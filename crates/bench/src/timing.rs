//! A minimal, registry-free timing harness.
//!
//! The micro-benchmarks under `benches/` used to be criterion targets;
//! criterion cannot be fetched in the offline build environment, so this
//! module provides the small subset the workspace needs: named benchmark
//! groups, per-element throughput, plain and batched (setup excluded from
//! timing) measurement loops, and a warmup + median-of-N estimator that is
//! robust to scheduler noise.
//!
//! Tuning knobs (environment variables):
//!
//! * `FIB_BENCH_SAMPLES` — samples per benchmark (default 11; the median
//!   of an odd count is an order statistic, not an average),
//! * `FIB_BENCH_SAMPLE_MS` — target wall-clock milliseconds per sample
//!   (default 10; each sample runs as many iterations as fit).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default number of samples per benchmark (odd, so the median is exact).
const DEFAULT_SAMPLES: usize = 11;
/// Default target duration of one sample.
const DEFAULT_SAMPLE_MS: u64 = 10;
/// Hard cap on iterations per sample, so ultra-cheap closures don't spin
/// for millions of iterations during calibration.
const MAX_ITERS_PER_SAMPLE: u64 = 1 << 22;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// The measurement state handed to a benchmark closure.
///
/// A closure must call exactly one of [`Bencher::iter`] or
/// [`Bencher::iter_batched`]; the harness reads the recorded elapsed time
/// afterwards.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the sample's iteration budget.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` before every iteration
    /// outside the timed region (criterion's `iter_batched`).
    pub fn iter_batched<S, T>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Median of a sample set; the harness's central estimator.
///
/// # Panics
/// Panics if `samples` is empty.
#[must_use]
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        f64::midpoint(sorted[mid - 1], sorted[mid])
    }
}

/// A named collection of benchmarks sharing a throughput setting.
pub struct BenchGroup {
    name: String,
    elements: Option<u64>,
    samples: usize,
    sample_target: Duration,
}

impl BenchGroup {
    /// Starts a group and prints its banner.
    #[must_use]
    pub fn new(name: &str) -> Self {
        println!("\n== bench group: {name} ==");
        Self {
            name: name.to_string(),
            elements: None,
            samples: env_usize("FIB_BENCH_SAMPLES", DEFAULT_SAMPLES),
            sample_target: Duration::from_millis(env_usize(
                "FIB_BENCH_SAMPLE_MS",
                DEFAULT_SAMPLE_MS as usize,
            ) as u64),
        }
    }

    /// Declares that one iteration processes `n` elements, enabling the
    /// elements/second column.
    #[must_use]
    pub fn throughput_elements(mut self, n: u64) -> Self {
        self.elements = Some(n);
        self
    }

    /// Overrides the sample count for expensive benchmarks.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one benchmark: calibrate, warm up, then report the median
    /// nanoseconds per iteration over the configured samples.
    pub fn bench_function(&self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        // Calibration run: one iteration, also serving as first warmup.
        // Iterations per sample are sized from *wall* time — which for
        // `iter_batched` includes the untimed setup — so a sample stays
        // near the time target even when setup dominates the routine.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let wall = Instant::now();
        f(&mut b);
        let once = wall.elapsed().max(Duration::from_nanos(1));
        let iters = u128::min(
            u128::from(MAX_ITERS_PER_SAMPLE),
            (self.sample_target.as_nanos() / once.as_nanos()).max(1),
        ) as u64;

        // Warmup with the real iteration count, then measure.
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                f(&mut b);
                b.elapsed.as_nanos() as f64 / b.iters as f64
            })
            .collect();
        let med = median(&per_iter_ns);

        let throughput = self.elements.map_or(String::new(), |n| {
            format!("  ({:.1} Melem/s)", n as f64 * 1e3 / med)
        });
        println!(
            "{}/{name:<24} {:>12.1} ns/iter  [{} samples x {iters} iters]{throughput}",
            self.name, med, self.samples,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_and_unsorted() {
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-12);
        assert!((median(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn bencher_runs_the_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 25,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 25);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn iter_batched_excludes_setup_reruns_setup_each_iteration() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| {
                runs += 1;
                v.len()
            },
        );
        assert_eq!(setups, 10);
        assert_eq!(runs, 10);
    }
}
