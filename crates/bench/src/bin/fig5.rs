//! Reproduces **Fig. 5**: update time vs. memory footprint on taz as the
//! leaf-push barrier λ sweeps 0…32, for a uniform-random update sequence
//! and a BGP-like sequence.
//!
//! The paper's curve: λ = 32 (plain trie) is fast to update but big;
//! λ = 0 (fully folded) is an order of magnitude smaller but expensive to
//! modify; λ ∈ [5, 12] wins almost all the space at ≈ 10 µs/update; and
//! the trade-off exists only for random updates — BGP updates are biased
//! toward long prefixes, whose re-folded subtries are tiny.
//!
//! Run with `--scale=0.1` for a quick pass.

use fib_bench::{f, instance_fib, print_table, scale_arg, write_tsv};
use fib_core::PrefixDag;
use fib_workload::rng::Xoshiro256;
use fib_workload::updates::{bgp_sequence, random_sequence, UpdateOp};
use std::time::Instant;

/// Applies a sequence to a fresh DAG, returning mean µs/update.
fn measure(dag: &PrefixDag<u32>, seq: &[UpdateOp<u32>]) -> f64 {
    let mut dag = dag.clone();
    let start = Instant::now();
    for op in seq {
        match *op {
            UpdateOp::Announce(p, nh) => {
                dag.insert(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                dag.remove(p);
            }
        }
    }
    start.elapsed().as_micros() as f64 / seq.len() as f64
}

fn main() {
    let scale = scale_arg();
    // The paper uses 15 runs of 7,500 updates; we use 3 × 7,500 per λ to
    // keep the full sweep under a few minutes.
    let runs = 3;
    let updates_per_run = 7_500;
    println!("Fig. 5 reproduction: update cost vs memory on taz (scale = {scale})");
    let trie = instance_fib("taz", scale, 0xF1B);

    let mut rng = Xoshiro256::seed_from_u64(0x516);
    let random_seqs: Vec<Vec<UpdateOp<u32>>> = (0..runs)
        .map(|_| random_sequence(&mut rng, updates_per_run, 4))
        .collect();
    let bgp_seqs: Vec<Vec<UpdateOp<u32>>> = (0..runs)
        .map(|_| bgp_sequence(&mut rng, &trie, updates_per_run))
        .collect();

    let mut rows = Vec::new();
    for lambda in (0..=32u8).step_by(2) {
        let dag = PrefixDag::from_trie(&trie, lambda);
        let mem = dag.model_size_bits() / 8;
        let rand_us: f64 = random_seqs.iter().map(|s| measure(&dag, s)).sum::<f64>() / runs as f64;
        let bgp_us: f64 = bgp_seqs.iter().map(|s| measure(&dag, s)).sum::<f64>() / runs as f64;
        eprintln!("λ={lambda:>2}: mem={mem}B rand={rand_us:.2}µs bgp={bgp_us:.2}µs");
        rows.push(vec![
            lambda.to_string(),
            mem.to_string(),
            f(rand_us, 3),
            f(bgp_us, 3),
            f(1.0 / rand_us, 3),
            f(1.0 / bgp_us, 3),
        ]);
    }

    let header = [
        "λ",
        "memory [bytes]",
        "random [µs/upd]",
        "BGP [µs/upd]",
        "random [Mupd/s]",
        "BGP [Mupd/s]",
    ];
    print_table(
        "Fig. 5: update time vs memory footprint (taz stand-in)",
        &header,
        &rows,
    );
    write_tsv("fig5", &header, &rows);

    println!("\nShape checks vs the paper:");
    println!("- memory shrinks monotonically as λ decreases (≈10× from λ=32 to λ=0);");
    println!("- random-update cost explodes below λ≈5 and flattens above;");
    println!("- BGP-update cost stays nearly flat across the whole sweep;");
    println!("- the λ∈[5,12] plateau sustains ≥ 0.1 Mupd/s (paper: ~100 K/s).");
}
