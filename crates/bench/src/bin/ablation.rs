//! Ablation studies supporting the paper's design choices (not a paper
//! artifact, but DESIGN.md commits to them):
//!
//! * **A1 — barrier formulas**: how the λ of Eq. (2)/(3) compares with an
//!   exhaustive sweep, across FIBs of different entropy;
//! * **A2 — XBW-b storage backends**: every (S_I, S_α) combination's size
//!   and lookup latency, quantifying what RRR and the Huffman/RRR wavelet
//!   tree buy.

use fib_bench::{f, instance_fib, kb, ns_per_call, print_table, scale_arg, write_tsv};
use fib_core::{
    lambda, FibEntropy, PrefixDag, SaStorage, SerializedDag, SiStorage, XbwFib, XbwStorage,
};
use fib_workload::rng::Xoshiro256;
use fib_workload::{FibSpec, LabelModel};
use std::hint::black_box;

fn a1_barrier_choice() {
    println!("\nA1: Eq.(2)/(3) barrier vs exhaustive sweep");
    let mut rows = Vec::new();
    for &(name, h0_target) in &[("low-H0", 0.3), ("mid-H0", 1.5), ("high-H0", 3.5)] {
        let mut rng = Xoshiro256::seed_from_u64(0xAB1);
        let trie = FibSpec {
            n_prefixes: 100_000,
            max_len: 25,
            depth_bias: 0.35,
            labels: LabelModel::geometric_for_h0(16, h0_target),
            spatial_correlation: 0.0,
            default_route: false,
        }
        .generate::<u32, _>(&mut rng);
        let metrics = FibEntropy::of_trie(&trie);
        let l2 = lambda::barrier_info(metrics.n_leaves, metrics.delta, 32);
        let l3 = lambda::barrier_entropy(metrics.n_leaves, metrics.h0, 32);

        // Sweep for the smallest serialized image.
        let mut best = (0u8, usize::MAX);
        for l in 0..=25u8 {
            let size = SerializedDag::from_dag(&PrefixDag::from_trie(&trie, l)).size_bytes();
            if size < best.1 {
                best = (l, size);
            }
        }
        let size_at = |l: u8| SerializedDag::from_dag(&PrefixDag::from_trie(&trie, l)).size_bytes();
        rows.push(vec![
            name.to_string(),
            f(metrics.h0, 2),
            format!("{l2}"),
            format!("{l3}"),
            format!("{}", best.0),
            kb(size_at(l3)),
            kb(best.1),
            f(size_at(l3) as f64 / best.1 as f64, 2),
        ]);
    }
    let header = [
        "FIB",
        "leaf H0",
        "λ Eq.(2)",
        "λ Eq.(3)",
        "λ best",
        "size@Eq3",
        "size@best",
        "ratio",
    ];
    print_table(
        "A1: barrier formula vs sweep (100K-prefix FIBs)",
        &header,
        &rows,
    );
    write_tsv("ablation_a1", &header, &rows);
    println!("Expectation: Eq.(3) lands within ~2 of the sweep optimum and");
    println!("costs only a few percent extra space.");
}

fn a2_xbw_backends(scale: f64) {
    println!("\nA2: XBW-b storage backends (taz stand-in, scale = {scale})");
    let trie = instance_fib("taz", scale, 0xF1B);
    let metrics = FibEntropy::of_trie(&trie);
    let proper = fib_trie::ProperTrie::from_trie(&trie);
    let ctx = FibEntropy::contextual_entropy_bits(&proper);
    println!(
        "normal form: n = {}, E = {} KB, I = {} KB, depth-conditioned E = {} KB",
        metrics.n_leaves,
        kb((metrics.entropy_bits() / 8.0) as usize),
        kb((metrics.info_bound_bits() / 8.0) as usize),
        kb((ctx / 8.0) as usize),
    );
    println!("(E vs depth-conditioned E answers §3.2's contextual-dependency question)");

    let addrs: Vec<u32> = (0..20_000u32)
        .map(|i| i.wrapping_mul(0x9E37_79B9))
        .collect();
    let mut rows = Vec::new();
    for (si_name, si) in [("plain", SiStorage::Plain), ("RRR", SiStorage::Rrr)] {
        for (sa_name, sa) in [
            ("packed", SaStorage::Packed),
            ("WT-balanced", SaStorage::WaveletBalanced),
            ("WT-huffman", SaStorage::WaveletHuffman),
            ("WT-huff+RRR", SaStorage::WaveletHuffmanRrr),
            ("per-level", SaStorage::HuffmanPerLevel),
        ] {
            let xbw = XbwFib::build(&trie, XbwStorage::Custom(si, sa));
            let report = xbw.size_report();
            let mut i = 0usize;
            let ns = ns_per_call(20_000, || {
                black_box(xbw.lookup(black_box(addrs[i % addrs.len()])));
                i += 1;
            });
            rows.push(vec![
                si_name.to_string(),
                sa_name.to_string(),
                kb(report.si_bits / 8),
                kb(report.sa_bits / 8),
                kb(report.total_bytes()),
                f(report.total_bits() as f64 / metrics.entropy_bits(), 2),
                f(ns, 0),
            ]);
        }
    }
    let header = [
        "S_I",
        "S_α",
        "S_I KB",
        "S_α KB",
        "total KB",
        "vs E",
        "ns/lookup",
    ];
    print_table("A2: XBW-b backend ablation", &header, &rows);
    write_tsv("ablation_a2", &header, &rows);
    println!("Expectation: RRR halves S_I; the Huffman+RRR tree takes S_α to ≈ nH0;");
    println!("compressed variants pay 2-5× in lookup latency — the pDAG exists");
    println!("because even the fastest XBW-b backend is far from line speed.");
}

fn a3_multibit_strides(scale: f64) {
    println!("\nA3: multibit prefix DAGs (§7 future work) — stride sweep");
    let trie = instance_fib("taz", scale, 0xF1B);
    let addrs: Vec<u32> = (0..20_000u32)
        .map(|i| i.wrapping_mul(0x9E37_79B9))
        .collect();
    let mut rows = Vec::new();
    // The binary pDAG (λ=11 serialized) as the reference row.
    let ser = SerializedDag::from_dag(&PrefixDag::from_trie(&trie, 11));
    let (avg_d, max_d) = ser.depth_stats(addrs.iter().copied());
    rows.push(vec![
        "pDAG λ=11".to_string(),
        kb(ser.size_bytes()),
        f(avg_d + 1.0, 2), // +1: the root-array read
        (max_d + 1).to_string(),
    ]);
    for stride in [1u8, 2, 4, 6, 8, 12] {
        let mb = fib_core::MultibitDag::from_trie(&trie, stride);
        let (avg, max) = mb.depth_stats();
        rows.push(vec![
            format!("multibit s={stride}"),
            kb(mb.size_bytes()),
            f(avg, 2),
            max.to_string(),
        ]);
    }
    let header = ["structure", "size KB", "avg reads", "max reads"];
    print_table(
        "A3: stride vs size and lookup depth (taz stand-in)",
        &header,
        &rows,
    );
    write_tsv("ablation_a3", &header, &rows);
    println!("Expectation: depth falls ~s×; size is U-shaped — moderate strides");
    println!("(2-4) keep sharing, wide ones duplicate slots faster than they save hops.");
}

fn main() {
    let scale = scale_arg();
    a1_barrier_choice();
    a2_xbw_backends(scale);
    a3_multibit_strides(scale);
}
