//! Reproduces **Table 1**: storage results for XBW-b and trie-folding on
//! access, core and synthetic FIBs — name, N, δ, H0, the information-
//! theoretic limit I, the entropy bound E, the XBW-b and prefix-DAG sizes
//! (λ = 11), compression efficiency ν and bits/prefix η — with the
//! published values printed alongside each measurement.
//!
//! Run with `--scale=0.1` for a quick pass on down-scaled instances.

use fib_bench::{f, instance_fib, kb, print_table, scale_arg, timed, write_tsv};
use fib_core::{FibEntropy, PrefixDag, SerializedDag, XbwFib, XbwStorage};
use fib_succinct::shannon_entropy;
use fib_trie::stats::{next_hop_count, route_label_histogram};

fn main() {
    let scale = scale_arg();
    println!("Table 1 reproduction (λ = 11, scale = {scale})");
    println!("Every size column shows measured / paper-published KBytes.");

    let mut rows = Vec::new();
    for inst in fib_workload::instances::all() {
        let (trie, secs) = timed(|| instance_fib(inst.name, scale, 0xF1B));
        let n = trie.len();
        let delta = next_hop_count(&trie);
        let hist = route_label_histogram(&trie);
        let counts: Vec<u64> = hist.values().copied().collect();
        let h0_routes = shannon_entropy(&counts);

        let metrics = FibEntropy::of_trie(&trie);
        let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
        let dag = PrefixDag::from_trie(&trie, 11);
        let ser = SerializedDag::from_dag(&dag);

        let i_bits = metrics.info_bound_bits();
        let e_bits = metrics.entropy_bits();
        let xbw_bits = xbw.size_report().total_bits() as f64;
        let pdag_bits = ser.size_bytes() as f64 * 8.0;
        let nu = pdag_bits / e_bits;
        let eta_xbw = xbw_bits / n as f64;
        let eta_pdag = pdag_bits / n as f64;

        eprintln!(
            "[{}] N={n} δ={delta} H0={:.2} built in {:.1}s (n_leaves={})",
            inst.name, h0_routes, secs, metrics.n_leaves
        );
        rows.push(vec![
            inst.name.to_string(),
            n.to_string(),
            format!("{delta}/{}", inst.delta),
            format!("{:.2}/{:.2}", h0_routes, inst.h0),
            format!("{}/{}", kb((i_bits / 8.0) as usize), f(inst.paper.i_kb, 0)),
            format!("{}/{}", kb((e_bits / 8.0) as usize), f(inst.paper.e_kb, 0)),
            format!(
                "{}/{}",
                kb((xbw_bits / 8.0) as usize),
                f(inst.paper.xbw_kb, 0)
            ),
            format!(
                "{}/{}",
                kb((pdag_bits / 8.0) as usize),
                f(inst.paper.pdag_kb, 0)
            ),
            format!("{}/{}", f(nu, 2), f(inst.paper.nu, 2)),
            format!("{}/{}", f(eta_xbw, 2), f(inst.paper.eta_xbw, 2)),
            format!("{}/{}", f(eta_pdag, 2), f(inst.paper.eta_pdag, 2)),
        ]);
    }

    let header = [
        "FIB",
        "N",
        "δ m/p",
        "H0 m/p",
        "I[KB] m/p",
        "E[KB] m/p",
        "XBW-b m/p",
        "pDAG m/p",
        "ν m/p",
        "ηXBW m/p",
        "ηpDAG m/p",
    ];
    print_table(
        "Table 1: storage size results (measured/paper)",
        &header,
        &rows,
    );
    write_tsv("table1", &header, &rows);

    println!("\nNotes:");
    println!("- measured sizes are for synthetic stand-ins matched on (N, δ, route-H0);");
    println!("  real FIBs have more leaf-level redundancy, so absolute KB differ while");
    println!("  the orderings and ratios (XBW-b ≈ E, pDAG ≈ 3×E) should hold.");
    println!("- pDAG size is the serialized λ=11 image, as deployed in §5.3.");
}
