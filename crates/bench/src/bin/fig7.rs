//! Reproduces **Fig. 7**: trie-folding as a string compressor. A string of
//! 2^17 Bernoulli(p) symbols is written onto the leaves of a complete
//! binary trie and folded with the Eq. (3) barrier; the plot is storage
//! size and compression efficiency versus p.
//!
//! The paper observes the same ν ≈ 3 efficiency as on FIBs, with the
//! low-entropy spike more pronounced.

use fib_bench::{f, kb, print_table, write_tsv};
use fib_core::FoldedString;
use fib_workload::rng::Xoshiro256;
use fib_workload::LabelModel;

const LEN_LOG2: u32 = 17;

fn main() {
    let n = 1usize << LEN_LOG2;
    println!("Fig. 7 reproduction: string model, n = 2^{LEN_LOG2} Bernoulli(p) symbols");

    let mut rows = Vec::new();
    for &p in &[0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5] {
        let model = LabelModel::Bernoulli { p };
        let sampler = model.sampler();
        let mut rng = Xoshiro256::seed_from_u64((p * 1e6) as u64 ^ 0xF17);
        let symbols: Vec<u16> = (0..n)
            .map(|_| sampler.sample(&mut rng).index() as u16)
            .collect();

        // Empirical entropy of the drawn string (what the bound is paid on).
        let ones = symbols.iter().filter(|&&s| s == 1).count() as u64;
        let h0 = fib_succinct::shannon_entropy(&[ones, n as u64 - ones]);

        let fs = FoldedString::with_entropy_barrier(&symbols);
        let size_bits = fs.model_size_bits() as f64;
        let entropy_bits = h0 * n as f64;
        let nu = if entropy_bits > 0.0 {
            size_bits / entropy_bits
        } else {
            f64::NAN
        };

        // Spot-verify random access on the folded form.
        for i in [0usize, n / 3, n - 1] {
            assert_eq!(fs.get(i), symbols[i], "folded access corrupted at {i}");
        }

        eprintln!("p={p}: λ={} H0={h0:.3} ν={nu:.2}", fs.lambda());
        rows.push(vec![
            f(p, 3),
            f(h0, 3),
            fs.lambda().to_string(),
            kb((size_bits / 8.0) as usize),
            kb((entropy_bits / 8.0) as usize),
            f(nu, 2),
        ]);
    }

    let header = ["p", "H0", "λ (Eq.3)", "size [KB]", "nH0 [KB]", "ν"];
    print_table(
        "Fig. 7: string-model size and efficiency vs p",
        &header,
        &rows,
    );
    write_tsv("fig7", &header, &rows);

    println!("\nShape checks vs the paper:");
    println!("- size grows with H0 (≈10 → ≈50 KB across the sweep);");
    println!("- ν stays around 3 for moderate p and spikes as p → 0;");
    println!("- every data point round-trips random access on the folded form.");
}
