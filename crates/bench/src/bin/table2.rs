//! Reproduces **Table 2**: the lookup benchmark on taz — size, average and
//! maximum depth, million lookups per second, CPU cycles per lookup, and
//! cache misses per packet, for XBW-b, the serialized prefix DAG, the
//! `fib_trie` stand-in (LC-trie under the kernel memory model), and the
//! FPGA model — over uniform-random keys and a locality-skewed trace.
//!
//! Run with `--scale=0.1` for a quick pass.

use fib_bench::{f, instance_fib, kb, ns_per_call, print_table, scale_arg, write_tsv};
use fib_core::{FibEngine, FibLookup, PrefixDag, SerializedDag, XbwFib, XbwStorage};
use fib_hwsim::{CacheSim, SramModel};
use fib_trie::LcTrie;
use fib_workload::rng::Xoshiro256;
use fib_workload::traces::{uniform, ZipfTrace};
use std::hint::black_box;

/// The paper's CPU clock, used to convert ns/lookup into cycles/lookup for
/// comparability with Table 2.
const PAPER_CLOCK_GHZ: f64 = 2.5;

fn bench_engine<E: FibEngine<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> (f64, f64) {
    // Warm up, then measure.
    let mut sink = 0u64;
    for &a in addrs.iter().take(1000) {
        sink = sink.wrapping_add(u64::from(engine.lookup(a).map_or(0, |nh| nh.index())));
    }
    black_box(sink);
    let mut i = 0usize;
    let ns = ns_per_call(addrs.len().min(300_000), || {
        let addr = addrs[i % addrs.len()];
        black_box(engine.lookup(black_box(addr)));
        i += 1;
    });
    let mlps = 1000.0 / ns;
    (mlps, ns * PAPER_CLOCK_GHZ)
}

fn cache_misses_traced(
    addrs: &[u32],
    mut traced: impl FnMut(u32, &mut dyn FnMut(u64, u32)),
) -> f64 {
    let mut sim = CacheSim::core_i5();
    // Warm the hierarchy on the first fifth, then count.
    let warm = addrs.len() / 5;
    for &a in &addrs[..warm] {
        traced(a, &mut |off, sz| sim.access(off, sz));
    }
    let warm_misses = sim.llc_misses();
    for &a in &addrs[warm..] {
        traced(a, &mut |off, sz| sim.access(off, sz));
    }
    (sim.llc_misses() - warm_misses) as f64 / (addrs.len() - warm) as f64
}

fn cache_misses<E: FibEngine<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> Option<f64> {
    if !engine.traces_memory() {
        return None;
    }
    Some(cache_misses_traced(addrs, |a, sink| {
        engine.lookup_traced(a, sink);
    }))
}

fn main() {
    let scale = scale_arg();
    println!("Table 2 reproduction on the taz stand-in (scale = {scale})");
    let trie = instance_fib("taz", scale, 0xF1B);

    let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
    let dag = PrefixDag::from_trie(&trie, 11);
    let ser = SerializedDag::from_dag(&dag);
    let lc = LcTrie::from_trie(&trie);

    let mut rng = Xoshiro256::seed_from_u64(0x7AB2);
    let rand_addrs: Vec<u32> = uniform(&mut rng, 200_000);
    let zipf = ZipfTrace::new(&trie, 1.1);
    let trace_addrs: Vec<u32> = zipf.generate(&mut rng, 200_000);

    // Depth statistics.
    let (pdag_avg_d, pdag_max_d) = ser.depth_stats(rand_addrs.iter().copied());
    let (lc_avg_d, lc_max_d) = lc.depth_stats();

    // FPGA model on the serialized image.
    let sram = SramModel::default();
    let fpga = sram.replay(&ser, rand_addrs.iter().copied());

    let engines: [&dyn FibEngine<u32>; 3] = [&xbw, &ser, &lc];
    let mut rows = Vec::new();

    // Size and depth block.
    rows.push(vec![
        "size [KByte]".to_string(),
        kb(FibLookup::<u32>::size_bytes(&xbw)),
        kb(FibLookup::<u32>::size_bytes(&ser)),
        kb(FibLookup::<u32>::size_bytes(&lc)),
        kb(FibLookup::<u32>::size_bytes(&ser)),
    ]);
    rows.push(vec![
        "avg depth".to_string(),
        "-".to_string(),
        f(pdag_avg_d, 2),
        f(lc_avg_d, 2),
        f(pdag_avg_d, 2),
    ]);
    rows.push(vec![
        "max depth".to_string(),
        "-".to_string(),
        pdag_max_d.to_string(),
        lc_max_d.to_string(),
        pdag_max_d.to_string(),
    ]);

    for (label, addrs) in [("rand", &rand_addrs), ("trace", &trace_addrs)] {
        let mut mlps_row = vec![format!("{label}: Mlookup/s")];
        let mut cyc_row = vec![format!("{label}: cycles/lookup")];
        let mut miss_row = vec![format!("{label}: cache miss/pkt")];
        for engine in engines {
            let (mlps, cycles) = bench_engine(engine, addrs);
            mlps_row.push(f(mlps, 2));
            cyc_row.push(f(cycles, 0));
            // fib_trie's cache behaviour is modeled on the kernel's 40-byte
            // node layout (26 MB at DFZ scale), not our packed arena.
            let misses = if engine.name() == "fib_trie" {
                Some(cache_misses_traced(addrs, |a, sink| {
                    lc.lookup_traced_kernel(a, sink);
                }))
            } else {
                cache_misses(engine, addrs)
            };
            miss_row.push(misses.map_or("-".to_string(), |m| f(m, 3)));
        }
        // FPGA column: deterministic cycle model, trace-independent.
        mlps_row.push(f(fpga.mlps, 2));
        cyc_row.push(f(fpga.avg_cycles, 1));
        miss_row.push("-".to_string());
        rows.push(mlps_row);
        rows.push(cyc_row);
        rows.push(miss_row);
    }

    let header = ["metric", "XBW-b", "pDAG", "fib_trie", "FPGA(model)"];
    print_table("Table 2: lookup benchmark (taz stand-in)", &header, &rows);
    write_tsv("table2", &header, &rows);

    println!("\nPaper reference (410K-prefix taz, 2.5 GHz i5 / Virtex-II Pro):");
    println!("  size:   XBW-b 106 KB | pDAG 178 KB | fib_trie 26,698 KB | FPGA 178 KB");
    println!(
        "  rand:   0.033 / 12.8 / 3.23 Mlps;  cycles 73940 / 194 / 771;  miss 0.016 / 0.003 / 3.17"
    );
    println!(
        "  trace:  0.037 / 13.8 / 5.68 Mlps;  cycles 67200 / 180 / 438;  miss 0.016 / 0.003 / 0.29"
    );
    println!("  FPGA:   6.9 Mlps at 7.1 cycles/lookup (100 MHz clock)");
    println!("\nShape checks: pDAG ≫ XBW-b in speed, pDAG ≥ 2-3× fib_trie on rand keys,");
    println!("fib_trie narrows the gap on the locality trace, pDAG misses ≈ 0.");
}
