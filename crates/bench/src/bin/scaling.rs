//! Multicore lookup scaling — §5.3's closing claim: because the serialized
//! prefix DAG is a small, read-only image, lookup throughput scales with
//! parallelism ("prefix DAGs could be scaled to hundreds of millions of
//! lookups per second"). This harness shares one image across N threads
//! (`std::thread::scope`; no locks, no cloning) and reports aggregate
//! Mlookups/s.
//!
//! Run with `--scale=0.1` for a quick pass.

use fib_bench::{f, instance_fib, print_table, scale_arg, write_tsv};
use fib_core::{PrefixDag, SerializedDag};
use fib_workload::rng::Xoshiro256;
use fib_workload::traces::uniform;
use std::hint::black_box;
use std::time::Instant;

const LOOKUPS_PER_THREAD: usize = 2_000_000;

fn run(threads: usize, image: &SerializedDag<u32>, keys: &[u32]) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let image = &image;
            let keys = &keys;
            scope.spawn(move || {
                let mut acc = 0u64;
                let offset = t * 7919; // decorrelate the streams
                for i in 0..LOOKUPS_PER_THREAD {
                    let key = keys[(i + offset) % keys.len()];
                    acc = acc.wrapping_add(u64::from(
                        image.lookup(black_box(key)).map_or(0, |nh| nh.index()),
                    ));
                }
                black_box(acc);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads * LOOKUPS_PER_THREAD) as f64 / secs / 1e6
}

fn main() {
    let scale = scale_arg();
    println!("Multicore scaling on the taz stand-in (scale = {scale})");
    let trie = instance_fib("taz", scale, 0xF1B);
    let image = SerializedDag::from_dag(&PrefixDag::from_trie(&trie, 11));
    println!(
        "image: {} KB ({} interior records)",
        image.size_bytes() / 1024,
        image.interior_count()
    );
    let mut rng = Xoshiro256::seed_from_u64(0x5CA1);
    let keys: Vec<u32> = uniform(&mut rng, 1 << 20);

    let available = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut rows = Vec::new();
    let mut single = 0.0;
    for threads in [1usize, 2, 4, 8, 16] {
        if threads > available * 2 {
            break;
        }
        let mlps = run(threads, &image, &keys);
        if threads == 1 {
            single = mlps;
        }
        rows.push(vec![threads.to_string(), f(mlps, 2), f(mlps / single, 2)]);
        eprintln!("{threads} threads: {mlps:.2} Mlps");
    }
    let header = ["threads", "Mlookup/s", "speedup"];
    print_table("Aggregate lookup throughput vs threads", &header, &rows);
    write_tsv("scaling", &header, &rows);
    println!("\nThe image is shared read-only — scaling is limited only by the");
    println!("memory system, supporting the paper's line-speed extrapolation.");
    println!("(Available parallelism on this host: {available}.)");
}
