//! `benchdump` — machine-readable lookup benchmark for the perf
//! trajectory.
//!
//! Measures every engine's longest-prefix-match latency (scalar and
//! batched) on a paper-instance FIB and writes `BENCH_lookup.json` at the
//! repo root, so successive PRs can diff per-engine medians instead of
//! re-reading prose. See README → "Benchmark trajectory" for the format.
//!
//! ```sh
//! cargo run --release -p fib-bench --bin benchdump            # taz, scale 0.1
//! cargo run --release -p fib-bench --bin benchdump -- --scale=0.05
//! cargo run --release -p fib-bench --bin benchdump -- --out=/tmp/bench.json
//! ```

use fib_bench::timing::median;
use fib_bench::{instance_fib, scale_arg};
use fib_core::{FibEngine, FibLookup, MultibitDag, PrefixDag, SerializedDag, XbwFib, XbwStorage};
use fib_trie::LcTrie;
use fib_workload::rng::Xoshiro256;
use fib_workload::traces::{uniform, ZipfTrace};
use std::hint::black_box;
use std::time::Instant;

/// Samples per engine; the median of an odd count is an order statistic.
const SAMPLES: usize = 9;

/// Median nanoseconds per scalar lookup over `SAMPLES` passes.
fn scalar_ns<E: FibEngine<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> f64 {
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let mut acc = 0u64;
        for &a in addrs {
            acc = acc.wrapping_add(u64::from(
                engine.lookup(black_box(a)).map_or(0, |nh| nh.index()),
            ));
        }
        black_box(acc);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

/// Median nanoseconds per batched lookup over `SAMPLES` passes.
fn batch_ns<E: FibEngine<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> f64 {
    let mut out = vec![None; addrs.len()];
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        engine.lookup_batch(black_box(addrs), &mut out);
        black_box(&out);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

fn main() {
    let scale = scale_arg();
    let out_path = std::env::args()
        .find_map(|a| a.strip_prefix("--out=").map(str::to_string))
        .unwrap_or_else(|| {
            // crates/bench → repo root.
            format!("{}/../../BENCH_lookup.json", env!("CARGO_MANIFEST_DIR"))
        });
    let instance = "taz";
    let trie = instance_fib(instance, scale, 0xF1B);

    let xbw_s = XbwFib::build(&trie, XbwStorage::Succinct);
    let xbw_e = XbwFib::build(&trie, XbwStorage::Entropy);
    let dag = PrefixDag::from_trie(&trie, 11);
    let ser = SerializedDag::from_dag(&dag);
    let lc = LcTrie::from_trie(&trie);
    let mb = MultibitDag::from_trie(&trie, 4);

    const KEY_COUNT: usize = 65_536;
    let mut rng = Xoshiro256::seed_from_u64(0x7AB2);
    let uniform_addrs: Vec<u32> = uniform(&mut rng, KEY_COUNT);
    // CAIDA-trace stand-in: Zipf-ranked destinations over the FIB's own
    // prefixes (exponent 1.0 ≈ measured traffic skew). Hot prefixes keep
    // their walk paths cache-resident, so this bounds the *best* case the
    // way uniform keys bound the worst.
    let zipf_model = ZipfTrace::new(&trie, 1.0);
    let mut zrng = Xoshiro256::seed_from_u64(0x21BF);
    let zipf_addrs: Vec<u32> = (0..KEY_COUNT)
        .map(|_| zipf_model.sample(&mut zrng))
        .collect();

    let engines: [(&str, &dyn FibEngine<u32>); 7] = [
        ("binary-trie", &trie),
        ("fib_trie", &lc),
        ("xbw-succinct", &xbw_s),
        ("xbw-entropy", &xbw_e),
        ("pdag", &dag),
        ("pdag-serialized", &ser),
        ("multibit-dag", &mb),
    ];

    // Hand-rolled JSON: the workspace has no serializer dependency and
    // the schema is flat. Schema v2: one row per (engine, key model).
    let mut rows = Vec::new();
    for (name, engine) in engines {
        for (keys, addrs) in [("uniform", &uniform_addrs), ("zipf", &zipf_addrs)] {
            let scalar = scalar_ns(engine, addrs);
            let batch = batch_ns(engine, addrs);
            let size_bits = FibLookup::<u32>::size_bytes(engine) * 8;
            println!(
                "{name:<18} {keys:<8} scalar {scalar:>8.1} ns  batch {batch:>8.1} ns  \
                 {size_bits} bits"
            );
            rows.push(format!(
                "    {{\"engine\": \"{name}\", \"keys\": \"{keys}\", \
                 \"median_ns_per_lookup\": {scalar:.1}, \
                 \"median_ns_per_lookup_batch\": {batch:.1}, \"size_bits\": {size_bits}}}"
            ));
        }
    }
    let json = format!(
        "{{\n  \"schema\": \"fibcomp-bench-lookup/v2\",\n  \"instance\": \"{instance}\",\n  \
         \"scale\": {scale},\n  \"routes\": {},\n  \"key_count\": {KEY_COUNT},\n  \
         \"engines\": [\n{}\n  ]\n}}\n",
        trie.len(),
        rows.join(",\n")
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("[wrote {out_path}]"),
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
