//! `benchdump` — machine-readable benchmarks for the perf trajectory.
//!
//! Two modes, each writing one JSON artifact at the repo root so
//! successive PRs can diff numbers instead of re-reading prose:
//!
//! * default (lookup): every engine's longest-prefix-match latency
//!   (scalar, batched, and software-pipelined stream) on a paper-instance
//!   FIB → `BENCH_lookup.json` (schema `fibcomp-bench-lookup/v2`). Key
//!   models: `uniform`, `zipf`, and the `zipf-dedup` control that
//!   separates popularity locality from depth bias (see README).
//! * `--serve`: the multi-core forwarding runtime — engine ×
//!   key-distribution × thread-count → aggregate Mlookups/s and p50/p99
//!   ns/lookup → `BENCH_serve.json` (schema `fibcomp-bench-serve/v1`).
//!
//! ```sh
//! cargo run --release -p fib-bench --bin benchdump            # lookup, taz 0.1
//! cargo run --release -p fib-bench --bin benchdump -- --serve # serve matrix
//! cargo run --release -p fib-bench --bin benchdump -- --scale=0.05 --out=/tmp/b.json
//! ```

use fib_bench::timing::median;
use fib_bench::{instance_fib, scale_arg};
use fib_core::{
    BuildConfig, FibBuild, FibEngine, FibLookup, FibUpdate, ImageCodec, MultibitDag, PrefixDag,
    SerializedDag, XbwFib, XbwStorage,
};
use fib_router::{aggregate, Forwarder, ForwarderConfig, PacingMode, Router, RouterConfig};
use fib_trie::{BinaryTrie, LcTrie};
use fib_workload::loadgen::{AddrStream, KeyModel};
use fib_workload::rng::Xoshiro256;
use fib_workload::traces::{uniform, ZipfTrace};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples per engine; the median of an odd count is an order statistic.
const SAMPLES: usize = 9;

/// Median nanoseconds per scalar lookup over `SAMPLES` passes.
fn scalar_ns<E: FibEngine<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> f64 {
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let mut acc = 0u64;
        for &a in addrs {
            acc = acc.wrapping_add(u64::from(
                engine.lookup(black_box(a)).map_or(0, |nh| nh.index()),
            ));
        }
        black_box(acc);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

/// Median nanoseconds per batched lookup over `SAMPLES` passes.
fn batch_ns<E: FibEngine<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> f64 {
    let mut out = vec![None; addrs.len()];
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        engine.lookup_batch(black_box(addrs), &mut out);
        black_box(&out);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

/// Median nanoseconds per software-pipelined stream lookup.
fn stream_ns<E: FibEngine<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> f64 {
    let mut out = vec![None; addrs.len()];
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        engine.lookup_stream(black_box(addrs), &mut out);
        black_box(&out);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

fn arg(prefix: &str) -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix(prefix).map(str::to_string))
}

fn repo_root_path(file: &str) -> String {
    // crates/bench → repo root.
    format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"))
}

fn main() {
    if std::env::args().any(|a| a == "--serve") {
        serve_mode();
    } else {
        lookup_mode();
    }
}

// ---------------------------------------------------------------------
// Lookup mode (BENCH_lookup.json, schema v2)
// ---------------------------------------------------------------------

fn lookup_mode() {
    let scale = scale_arg();
    let out_path = arg("--out=").unwrap_or_else(|| repo_root_path("BENCH_lookup.json"));
    let instance = "taz";
    let trie = instance_fib(instance, scale, 0xF1B);

    let xbw_s = XbwFib::build(&trie, XbwStorage::Succinct);
    let xbw_e = XbwFib::build(&trie, XbwStorage::Entropy);
    let dag = PrefixDag::from_trie(&trie, 11);
    let ser = SerializedDag::from_dag(&dag);
    let lc = LcTrie::from_trie(&trie);
    let mb = MultibitDag::from_trie(&trie, 4);

    const KEY_COUNT: usize = 65_536;
    let mut rng = Xoshiro256::seed_from_u64(0x7AB2);
    let uniform_addrs: Vec<u32> = uniform(&mut rng, KEY_COUNT);
    // CAIDA-trace stand-in: Zipf-ranked destinations over the FIB's own
    // prefixes (exponent 1.0 ≈ measured traffic skew). Hot prefixes keep
    // their walk paths cache-resident, so this bounds the *best* case the
    // way uniform keys bound the worst.
    let zipf_model = ZipfTrace::new(&trie, 1.0);
    let mut zrng = Xoshiro256::seed_from_u64(0x21BF);
    let zipf_addrs: Vec<u32> = (0..KEY_COUNT)
        .map(|_| zipf_model.sample(&mut zrng))
        .collect();
    // The dedup control: the same Zipf depth profile with every address
    // distinct, so popularity locality is removed while depth bias stays.
    // Comparing zipf / zipf-dedup / uniform attributes the zipf slowdown
    // (see README → "Why zipf keys are slower than uniform").
    let mut drng = Xoshiro256::seed_from_u64(0x5EED);
    let dedup_addrs: Vec<u32> = zipf_model.generate_dedup(&mut drng, KEY_COUNT);

    let engines: [(&str, &dyn FibEngine<u32>); 7] = [
        ("binary-trie", &trie),
        ("fib_trie", &lc),
        ("xbw-succinct", &xbw_s),
        ("xbw-entropy", &xbw_e),
        ("pdag", &dag),
        ("pdag-serialized", &ser),
        ("multibit-dag", &mb),
    ];

    // Hand-rolled JSON: the workspace has no serializer dependency and
    // the schema is flat. Schema v2: one row per (engine, key model);
    // the `zipf-dedup` key model and the stream column are additive.
    let mut rows = Vec::new();
    for (name, engine) in engines {
        for (keys, addrs) in [
            ("uniform", &uniform_addrs),
            ("zipf", &zipf_addrs),
            ("zipf-dedup", &dedup_addrs),
        ] {
            let scalar = scalar_ns(engine, addrs);
            let batch = batch_ns(engine, addrs);
            let stream = stream_ns(engine, addrs);
            let size_bits = FibLookup::<u32>::size_bytes(engine) * 8;
            println!(
                "{name:<18} {keys:<10} scalar {scalar:>8.1} ns  batch {batch:>8.1} ns  \
                 stream {stream:>8.1} ns  {size_bits} bits"
            );
            rows.push(format!(
                "    {{\"engine\": \"{name}\", \"keys\": \"{keys}\", \
                 \"median_ns_per_lookup\": {scalar:.1}, \
                 \"median_ns_per_lookup_batch\": {batch:.1}, \
                 \"median_ns_per_lookup_stream\": {stream:.1}, \"size_bits\": {size_bits}}}"
            ));
        }
    }
    let json = format!(
        "{{\n  \"schema\": \"fibcomp-bench-lookup/v2\",\n  \"instance\": \"{instance}\",\n  \
         \"scale\": {scale},\n  \"routes\": {},\n  \"key_count\": {KEY_COUNT},\n  \
         \"engines\": [\n{}\n  ]\n}}\n",
        trie.len(),
        rows.join(",\n")
    );
    write_artifact(&out_path, &json);
}

// ---------------------------------------------------------------------
// Serve mode (BENCH_serve.json, schema v1)
// ---------------------------------------------------------------------

/// One serve-matrix measurement.
struct ServeCell {
    engine: &'static str,
    keys: &'static str,
    threads: usize,
    mlps: f64,
    p50: f64,
    p99: f64,
    packets: u64,
    drops: u64,
}

fn serve_engine<E>(
    name: &'static str,
    trie: &BinaryTrie<u32>,
    build: BuildConfig,
    duration: Duration,
    cells: &mut Vec<ServeCell>,
) where
    E: FibLookup<u32>
        + FibBuild<u32>
        + FibUpdate<u32>
        + ImageCodec<u32>
        + Clone
        + Send
        + Sync
        + 'static,
{
    let router: Router<u32, E> = Router::new(
        trie.clone(),
        RouterConfig {
            build,
            publish_every: None,
            ..RouterConfig::default()
        },
    );
    let pool = Forwarder::new();
    for keys in ["uniform", "zipf", "bursty"] {
        let model = KeyModel::parse(keys).expect("known model");
        for threads in [1usize, 2, 4] {
            let config = ForwarderConfig {
                threads,
                batch: 256,
                duration,
                pacing: PacingMode::Closed,
            };
            let reports = pool.run(router.snap_cell(), &config, |worker| {
                let mut stream = AddrStream::new(model, trie, 0xD1A1, worker as u64);
                move |buf: &mut Vec<u32>, n: usize| stream.fill(buf, n)
            });
            let (mlps, hist) = aggregate(&reports);
            let packets: u64 = reports.iter().map(|r| r.packets).sum();
            let drops: u64 = reports.iter().map(|r| r.drops).sum();
            assert!(
                reports.iter().all(|r| !r.epoch_regressed),
                "torn snapshot during serve benchmark"
            );
            println!(
                "{name:<18} {keys:<8} {threads} thr  {mlps:>7.2} Mlps  \
                 p50 {:>7.1} ns  p99 {:>7.1} ns  {packets} pkts",
                hist.p50(),
                hist.p99()
            );
            cells.push(ServeCell {
                engine: name,
                keys,
                threads,
                mlps,
                p50: hist.p50(),
                p99: hist.p99(),
                packets,
                drops,
            });
        }
    }
}

fn serve_mode() {
    let scale = scale_arg();
    let out_path = arg("--out=").unwrap_or_else(|| repo_root_path("BENCH_serve.json"));
    let duration_s: f64 = arg("--duration=").map_or(0.2, |s| {
        s.parse().expect("--duration=SECONDS must be a number")
    });
    let duration = Duration::from_secs_f64(duration_s);
    let instance = "taz";
    let trie = instance_fib(instance, scale, 0xF1B);

    let base = BuildConfig::default();
    let succinct = BuildConfig {
        xbw_storage: XbwStorage::Succinct,
        ..base
    };
    let mut cells = Vec::new();
    serve_engine::<SerializedDag<u32>>("pdag-serialized", &trie, base, duration, &mut cells);
    serve_engine::<MultibitDag<u32>>("multibit-dag", &trie, base, duration, &mut cells);
    serve_engine::<LcTrie<u32>>("fib_trie", &trie, base, duration, &mut cells);
    serve_engine::<XbwFib<u32>>("xbw-succinct", &trie, succinct, duration, &mut cells);

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"engine\": \"{}\", \"keys\": \"{}\", \"threads\": {}, \
                 \"mlookups_per_s\": {:.3}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \
                 \"packets\": {}, \"drops\": {}}}",
                c.engine, c.keys, c.threads, c.mlps, c.p50, c.p99, c.packets, c.drops
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"fibcomp-bench-serve/v1\",\n  \"instance\": \"{instance}\",\n  \
         \"scale\": {scale},\n  \"routes\": {},\n  \"batch\": 256,\n  \
         \"duration_s\": {duration_s},\n  \"host_cores\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        trie.len(),
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        rows.join(",\n")
    );
    write_artifact(&out_path, &json);
}

fn write_artifact(out_path: &str, json: &str) {
    match std::fs::write(out_path, json) {
        Ok(()) => println!("[wrote {out_path}]"),
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
