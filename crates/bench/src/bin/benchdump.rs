//! `benchdump` — machine-readable benchmarks for the perf trajectory.
//!
//! Two modes, each writing one JSON artifact at the repo root so
//! successive PRs can diff numbers instead of re-reading prose:
//!
//! * default (lookup): every engine's longest-prefix-match latency
//!   (scalar, batched, and software-pipelined stream) on a paper-instance
//!   FIB → `BENCH_lookup.json` (schema `fibcomp-bench-lookup/v3`). Key
//!   models: `uniform`, `zipf`, and the `zipf-dedup` control that
//!   separates popularity locality from depth bias (see README). Each
//!   (engine, keys) pair gets a `layout: "base"` row and a
//!   `layout: "hot"` row — the latter serving behind a hot slab compiled
//!   from the zipf traffic — and the top level records the SIMD gather
//!   dispatch (`avx2` or `scalar`). `FIB_BENCH_ASSERT=1` makes the run
//!   fail if any engine's base batch path regresses scalar by >10 %.
//! * `--serve`: the multi-core forwarding runtime — engine ×
//!   key-distribution × thread-count → aggregate Mlookups/s and p50/p99
//!   ns/lookup → `BENCH_serve.json` (schema `fibcomp-bench-serve/v1`).
//!
//! ```sh
//! cargo run --release -p fib-bench --bin benchdump            # lookup, taz 0.1
//! cargo run --release -p fib-bench --bin benchdump -- --serve # serve matrix
//! cargo run --release -p fib-bench --bin benchdump -- --scale=0.05 --out=/tmp/b.json
//! ```

use fib_bench::timing::median;
use fib_bench::{instance_fib, scale_arg};
use fib_core::{
    slab_batch, BuildConfig, FibBuild, FibEngine, FibLookup, FibUpdate, HotConfig, HotSlab,
    ImageCodec, MultibitDag, PrefixDag, SerializedDag, XbwFib, XbwStorage,
};
use fib_router::{aggregate, Forwarder, ForwarderConfig, PacingMode, Router, RouterConfig};
use fib_succinct::simd::simd_label;
use fib_trie::{BinaryTrie, LcTrie};
use fib_workload::loadgen::{AddrStream, KeyModel};
use fib_workload::rng::Xoshiro256;
use fib_workload::traces::{uniform, ZipfTrace};
use fib_workload::HeatSummary;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples per engine; the median of an odd count is an order statistic.
const SAMPLES: usize = 9;

/// Median nanoseconds per scalar lookup over `SAMPLES` passes.
fn scalar_ns<E: FibEngine<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> f64 {
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let mut acc = 0u64;
        for &a in addrs {
            acc = acc.wrapping_add(u64::from(
                engine.lookup(black_box(a)).map_or(0, |nh| nh.index()),
            ));
        }
        black_box(acc);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

/// Median nanoseconds per batched lookup over `SAMPLES` passes.
fn batch_ns<E: FibEngine<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> f64 {
    let mut out = vec![None; addrs.len()];
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        engine.lookup_batch(black_box(addrs), &mut out);
        black_box(&out);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

/// Median nanoseconds per software-pipelined stream lookup.
fn stream_ns<E: FibEngine<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> f64 {
    let mut out = vec![None; addrs.len()];
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        engine.lookup_stream(black_box(addrs), &mut out);
        black_box(&out);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

/// The hot-layout counterparts: the same slab-first dispatch the
/// `HotFib` wrapper and hot image views use, measured over a borrowed
/// engine (a slab probe, then the engine on misses).
fn hot_scalar_ns<E: FibEngine<u32> + ?Sized>(engine: &E, slab: &HotSlab, addrs: &[u32]) -> f64 {
    let view = slab.as_ref();
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let mut acc = 0u64;
        for &a in addrs {
            let hop = match view.probe_addr(black_box(a)) {
                Some(answer) => answer,
                None => engine.lookup(a),
            };
            acc = acc.wrapping_add(u64::from(hop.map_or(0, |nh| nh.index())));
        }
        black_box(acc);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

fn hot_batch_ns<E: FibEngine<u32> + ?Sized>(engine: &E, slab: &HotSlab, addrs: &[u32]) -> f64 {
    let mut out = vec![None; addrs.len()];
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        slab_batch(slab.as_ref(), black_box(addrs), &mut out, |a, o| {
            engine.lookup_batch(a, o);
        });
        black_box(&out);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

fn hot_stream_ns<E: FibEngine<u32> + ?Sized>(engine: &E, slab: &HotSlab, addrs: &[u32]) -> f64 {
    let mut out = vec![None; addrs.len()];
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        slab_batch(slab.as_ref(), black_box(addrs), &mut out, |a, o| {
            engine.lookup_stream(a, o);
        });
        black_box(&out);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

fn arg(prefix: &str) -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix(prefix).map(str::to_string))
}

fn repo_root_path(file: &str) -> String {
    // crates/bench → repo root.
    format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"))
}

fn main() {
    if std::env::args().any(|a| a == "--serve") {
        serve_mode();
    } else {
        lookup_mode();
    }
}

// ---------------------------------------------------------------------
// Lookup mode (BENCH_lookup.json, schema v2)
// ---------------------------------------------------------------------

fn lookup_mode() {
    let scale = scale_arg();
    let out_path = arg("--out=").unwrap_or_else(|| repo_root_path("BENCH_lookup.json"));
    let instance = "taz";
    let trie = instance_fib(instance, scale, 0xF1B);

    let xbw_s = XbwFib::build(&trie, XbwStorage::Succinct);
    let xbw_e = XbwFib::build(&trie, XbwStorage::Entropy);
    let dag = PrefixDag::from_trie(&trie, 11);
    let ser = SerializedDag::from_dag(&dag);
    let lc = LcTrie::from_trie(&trie);
    let mb = MultibitDag::from_trie(&trie, 4);

    const KEY_COUNT: usize = 65_536;
    let mut rng = Xoshiro256::seed_from_u64(0x7AB2);
    let uniform_addrs: Vec<u32> = uniform(&mut rng, KEY_COUNT);
    // CAIDA-trace stand-in: Zipf-ranked destinations over the FIB's own
    // prefixes (exponent 1.0 ≈ measured traffic skew). Hot prefixes keep
    // their walk paths cache-resident, so this bounds the *best* case the
    // way uniform keys bound the worst.
    let zipf_model = ZipfTrace::new(&trie, 1.0);
    let mut zrng = Xoshiro256::seed_from_u64(0x21BF);
    let zipf_addrs: Vec<u32> = (0..KEY_COUNT)
        .map(|_| zipf_model.sample(&mut zrng))
        .collect();
    // The dedup control: the same Zipf depth profile with every address
    // distinct, so popularity locality is removed while depth bias stays.
    // Comparing zipf / zipf-dedup / uniform attributes the zipf slowdown
    // (see README → "Why zipf keys are slower than uniform").
    let mut drng = Xoshiro256::seed_from_u64(0x5EED);
    let dedup_addrs: Vec<u32> = zipf_model.generate_dedup(&mut drng, KEY_COUNT);

    let engines: [(&str, &dyn FibEngine<u32>); 7] = [
        ("binary-trie", &trie),
        ("fib_trie", &lc),
        ("xbw-succinct", &xbw_s),
        ("xbw-entropy", &xbw_e),
        ("pdag", &dag),
        ("pdag-serialized", &ser),
        ("multibit-dag", &mb),
    ];

    // Traffic heat for the hot layout: the zipf key stream *is* the
    // traffic model, so sample it into a block summary and compile the
    // hottest pure blocks into one shared slab (what a router's
    // `publish_hot` does online).
    let hot_config = HotConfig::for_width(32);
    let heat = HeatSummary::sample_addrs(hot_config.depth, zipf_addrs.iter().copied());
    let (slab, hot_stats) = HotSlab::compile(&trie, heat.entries(), &hot_config);
    println!(
        "hot slab: depth {} entries {} ({} impure, {} dropped) coverage {:.3}",
        slab.depth(),
        slab.occupied(),
        hot_stats.impure,
        hot_stats.dropped,
        hot_stats.coverage
    );

    // Hand-rolled JSON: the workspace has no serializer dependency and
    // the schema is flat. Schema v3: one row per (engine, key model,
    // layout). `layout: "base"` rows are the v2 rows verbatim;
    // `layout: "hot"` rows serve the same engine behind the shared
    // traffic-compiled slab, and the top level records the SIMD dispatch
    // the gather kernels resolved to.
    let assert_batch = std::env::var("FIB_BENCH_ASSERT").as_deref() == Ok("1");
    let mut rows = Vec::new();
    for (name, engine) in engines {
        for (keys, addrs) in [
            ("uniform", &uniform_addrs),
            ("zipf", &zipf_addrs),
            ("zipf-dedup", &dedup_addrs),
        ] {
            let mut scalar = scalar_ns(engine, addrs);
            let mut batch = batch_ns(engine, addrs);
            if assert_batch {
                // Timing is noisy at the few-ns scale where the gated
                // batch path is the scalar walk plus call overhead; give
                // a marginal reading a couple of fresh measurements
                // before declaring a structural regression.
                for _ in 0..2 {
                    if batch <= scalar * 1.1 {
                        break;
                    }
                    scalar = scalar_ns(engine, addrs);
                    batch = batch_ns(engine, addrs);
                }
                assert!(
                    batch <= scalar * 1.1,
                    "{name}/{keys}: batch path {batch:.1} ns regresses scalar {scalar:.1} ns"
                );
            }
            let stream = stream_ns(engine, addrs);
            let size_bits = FibLookup::<u32>::size_bytes(engine) * 8;
            println!(
                "{name:<18} {keys:<10} base scalar {scalar:>8.1} ns  batch {batch:>8.1} ns  \
                 stream {stream:>8.1} ns  {size_bits} bits"
            );
            rows.push(format!(
                "    {{\"engine\": \"{name}\", \"keys\": \"{keys}\", \"layout\": \"base\", \
                 \"median_ns_per_lookup\": {scalar:.1}, \
                 \"median_ns_per_lookup_batch\": {batch:.1}, \
                 \"median_ns_per_lookup_stream\": {stream:.1}, \"size_bits\": {size_bits}}}"
            ));

            let hscalar = hot_scalar_ns(engine, &slab, addrs);
            let hbatch = hot_batch_ns(engine, &slab, addrs);
            let hstream = hot_stream_ns(engine, &slab, addrs);
            let hot_bits = (FibLookup::<u32>::size_bytes(engine) + slab.size_bytes()) * 8;
            println!(
                "{name:<18} {keys:<10} hot  scalar {hscalar:>8.1} ns  batch {hbatch:>8.1} ns  \
                 stream {hstream:>8.1} ns  {hot_bits} bits"
            );
            rows.push(format!(
                "    {{\"engine\": \"{name}\", \"keys\": \"{keys}\", \"layout\": \"hot\", \
                 \"median_ns_per_lookup\": {hscalar:.1}, \
                 \"median_ns_per_lookup_batch\": {hbatch:.1}, \
                 \"median_ns_per_lookup_stream\": {hstream:.1}, \"size_bits\": {hot_bits}}}"
            ));
        }
    }
    let json = format!(
        "{{\n  \"schema\": \"fibcomp-bench-lookup/v3\",\n  \"instance\": \"{instance}\",\n  \
         \"scale\": {scale},\n  \"routes\": {},\n  \"key_count\": {KEY_COUNT},\n  \
         \"dispatch\": \"{}\",\n  \"hot_slab\": {{\"depth\": {}, \"entries\": {}, \
         \"coverage\": {:.4}}},\n  \"engines\": [\n{}\n  ]\n}}\n",
        trie.len(),
        simd_label(),
        slab.depth(),
        slab.occupied(),
        hot_stats.coverage,
        rows.join(",\n")
    );
    write_artifact(&out_path, &json);
}

// ---------------------------------------------------------------------
// Serve mode (BENCH_serve.json, schema v1)
// ---------------------------------------------------------------------

/// One serve-matrix measurement.
struct ServeCell {
    engine: &'static str,
    keys: &'static str,
    threads: usize,
    mlps: f64,
    p50: f64,
    p99: f64,
    packets: u64,
    drops: u64,
}

fn serve_engine<E>(
    name: &'static str,
    trie: &BinaryTrie<u32>,
    build: BuildConfig,
    duration: Duration,
    cells: &mut Vec<ServeCell>,
) where
    E: FibLookup<u32>
        + FibBuild<u32>
        + FibUpdate<u32>
        + ImageCodec<u32>
        + Clone
        + Send
        + Sync
        + 'static,
{
    let router: Router<u32, E> = Router::new(
        trie.clone(),
        RouterConfig {
            build,
            publish_every: None,
            ..RouterConfig::default()
        },
    );
    let pool = Forwarder::new();
    for keys in ["uniform", "zipf", "bursty"] {
        let model = KeyModel::parse(keys).expect("known model");
        for threads in [1usize, 2, 4] {
            let config = ForwarderConfig {
                threads,
                batch: 256,
                duration,
                pacing: PacingMode::Closed,
            };
            let reports = pool.run(router.snap_cell(), &config, |worker| {
                let mut stream = AddrStream::new(model, trie, 0xD1A1, worker as u64);
                move |buf: &mut Vec<u32>, n: usize| stream.fill(buf, n)
            });
            let (mlps, hist) = aggregate(&reports);
            let packets: u64 = reports.iter().map(|r| r.packets).sum();
            let drops: u64 = reports.iter().map(|r| r.drops).sum();
            assert!(
                reports.iter().all(|r| !r.epoch_regressed),
                "torn snapshot during serve benchmark"
            );
            println!(
                "{name:<18} {keys:<8} {threads} thr  {mlps:>7.2} Mlps  \
                 p50 {:>7.1} ns  p99 {:>7.1} ns  {packets} pkts",
                hist.p50(),
                hist.p99()
            );
            cells.push(ServeCell {
                engine: name,
                keys,
                threads,
                mlps,
                p50: hist.p50(),
                p99: hist.p99(),
                packets,
                drops,
            });
        }
    }
}

fn serve_mode() {
    let scale = scale_arg();
    let out_path = arg("--out=").unwrap_or_else(|| repo_root_path("BENCH_serve.json"));
    let duration_s: f64 = arg("--duration=").map_or(0.2, |s| {
        s.parse().expect("--duration=SECONDS must be a number")
    });
    let duration = Duration::from_secs_f64(duration_s);
    let instance = "taz";
    let trie = instance_fib(instance, scale, 0xF1B);

    let base = BuildConfig::default();
    let succinct = BuildConfig {
        xbw_storage: XbwStorage::Succinct,
        ..base
    };
    let mut cells = Vec::new();
    serve_engine::<SerializedDag<u32>>("pdag-serialized", &trie, base, duration, &mut cells);
    serve_engine::<MultibitDag<u32>>("multibit-dag", &trie, base, duration, &mut cells);
    serve_engine::<LcTrie<u32>>("fib_trie", &trie, base, duration, &mut cells);
    serve_engine::<XbwFib<u32>>("xbw-succinct", &trie, succinct, duration, &mut cells);

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"engine\": \"{}\", \"keys\": \"{}\", \"threads\": {}, \
                 \"mlookups_per_s\": {:.3}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \
                 \"packets\": {}, \"drops\": {}}}",
                c.engine, c.keys, c.threads, c.mlps, c.p50, c.p99, c.packets, c.drops
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"fibcomp-bench-serve/v1\",\n  \"instance\": \"{instance}\",\n  \
         \"scale\": {scale},\n  \"routes\": {},\n  \"batch\": 256,\n  \
         \"duration_s\": {duration_s},\n  \"host_cores\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        trie.len(),
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        rows.join(",\n")
    );
    write_artifact(&out_path, &json);
}

fn write_artifact(out_path: &str, json: &str) {
    match std::fs::write(out_path, json) {
        Ok(()) => println!("[wrote {out_path}]"),
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
