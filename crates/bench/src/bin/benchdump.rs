//! `benchdump` — machine-readable benchmarks for the perf trajectory.
//!
//! Three modes, each writing one JSON artifact at the repo root so
//! successive PRs can diff numbers instead of re-reading prose:
//!
//! * default (lookup): every engine's longest-prefix-match latency
//!   (scalar, batched, and software-pipelined stream) on a paper-instance
//!   FIB → `BENCH_lookup.json` (schema `fibcomp-bench-lookup/v4`). Key
//!   models: `uniform`, `zipf`, and the `zipf-dedup` control that
//!   separates popularity locality from depth bias (see README). Each
//!   (engine, keys) pair gets a `layout: "base"` row and a
//!   `layout: "hot"` row — the latter serving through the adaptive
//!   [`HotFib`] wrapper (slab probe gated by the measured hit rate, so
//!   traffic the slab cannot help bypasses it) — and the top level
//!   records the SIMD gather dispatch (`avx2` or `scalar`). The `vsdag`
//!   engine is compiled against the sampled zipf heat, and its rows
//!   carry the `stride_histogram` its placement DP chose.
//!   `FIB_BENCH_ASSERT=1` makes the run fail if any engine's base batch
//!   path regresses scalar by >10 %, if any hot row regresses its base
//!   row by >10 % plus the half-ns constant slab-probe cost on any
//!   metric, if vsdag's expected walk depth exceeds
//!   1.2 hops (uniform keys) / 2.0 hops (the zipf trace it was compiled
//!   from), if vsdag's zipf scalar latency is not at least a third
//!   below the stride-4 multibit image's, or if the vsdag image exceeds
//!   1.5x the stride-4 multibit image. The scalar columns store every
//!   result like the batch kernels do (v4; v3 accumulated), so the
//!   batch gate compares like with like.
//! * `--serve`: the multi-core forwarding runtime — engine ×
//!   key-distribution × thread-count → aggregate Mlookups/s and p50/p99
//!   ns/lookup → `BENCH_serve.json` (schema `fibcomp-bench-serve/v1`).
//! * `--vrf`: the multi-tenant compiler — a 64-table fleet derived from
//!   taz (90 % shared base, 10 % per-VRF churn) compiled into one shared
//!   arena at 1/16/64 VRFs → dedup ratio, resident vs independent bytes
//!   and mixed-VRF lookup throughput → `BENCH_vrf.json` (schema
//!   `fibcomp-bench-vrf/v1`). Answers are checked against each VRF's
//!   oracle before timing. `FIB_BENCH_ASSERT=1` additionally requires
//!   the 64-VRF arena to be ≥30 % smaller than independent compiles.
//!
//! ```sh
//! cargo run --release -p fib-bench --bin benchdump            # lookup, taz 0.1
//! cargo run --release -p fib-bench --bin benchdump -- --serve # serve matrix
//! cargo run --release -p fib-bench --bin benchdump -- --vrf   # VRF dedup + throughput
//! cargo run --release -p fib-bench --bin benchdump -- --scale=0.05 --out=/tmp/b.json
//! ```

use fib_bench::timing::median;
use fib_bench::{instance_fib, scale_arg};
use fib_core::{
    BuildConfig, FibBuild, FibEngine, FibLookup, FibUpdate, HotConfig, HotFib, HotSlab, ImageCodec,
    MultibitDag, PrefixDag, SerializedDag, VarStrideDag, VrfPolicy, XbwFib, XbwStorage,
};
use fib_router::{
    aggregate, Forwarder, ForwarderConfig, PacingMode, Router, RouterConfig, VrfBatchScratch,
    VrfSetRouter,
};
use fib_succinct::simd::simd_label;
use fib_trie::{BinaryTrie, LcTrie};
use fib_workload::loadgen::{AddrStream, KeyModel};
use fib_workload::rng::Xoshiro256;
use fib_workload::traces::{uniform, ZipfTrace};
use fib_workload::vrf::{instance_fleet, mixed_keys};
use fib_workload::HeatSummary;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples per engine; the median of an odd count is an order statistic.
const SAMPLES: usize = 9;

/// Median nanoseconds per scalar lookup over `SAMPLES` passes.
///
/// Results are stored per element, exactly as the batch and stream
/// paths must: a consumer keeps every next hop either way, and an
/// accumulate-only scalar loop would dodge the out-buffer store
/// traffic the batch kernels pay, biasing the `FIB_BENCH_ASSERT`
/// batch-vs-scalar gate against sub-10ns engines (schema v4 change;
/// v3 scalar columns accumulated instead of storing).
fn scalar_ns<E: FibLookup<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> f64 {
    let mut out = vec![None; addrs.len()];
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for (&a, slot) in addrs.iter().zip(out.iter_mut()) {
            *slot = engine.lookup(black_box(a));
        }
        black_box(&out);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

/// Median nanoseconds per batched lookup over `SAMPLES` passes.
fn batch_ns<E: FibLookup<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> f64 {
    let mut out = vec![None; addrs.len()];
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        engine.lookup_batch(black_box(addrs), &mut out);
        black_box(&out);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

/// Median nanoseconds per software-pipelined stream lookup.
fn stream_ns<E: FibLookup<u32> + ?Sized>(engine: &E, addrs: &[u32]) -> f64 {
    let mut out = vec![None; addrs.len()];
    let mut passes = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        engine.lookup_stream(black_box(addrs), &mut out);
        black_box(&out);
        passes.push(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    median(&passes)
}

fn arg(prefix: &str) -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix(prefix).map(str::to_string))
}

fn repo_root_path(file: &str) -> String {
    // crates/bench → repo root.
    format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"))
}

fn main() {
    if std::env::args().any(|a| a == "--serve") {
        serve_mode();
    } else if std::env::args().any(|a| a == "--vrf") {
        vrf_mode();
    } else {
        lookup_mode();
    }
}

// ---------------------------------------------------------------------
// Lookup mode (BENCH_lookup.json, schema v2)
// ---------------------------------------------------------------------

fn lookup_mode() {
    let scale = scale_arg();
    let out_path = arg("--out=").unwrap_or_else(|| repo_root_path("BENCH_lookup.json"));
    let instance = "taz";
    let trie = instance_fib(instance, scale, 0xF1B);

    let xbw_s = XbwFib::build(&trie, XbwStorage::Succinct);
    let xbw_e = XbwFib::build(&trie, XbwStorage::Entropy);
    let dag = PrefixDag::from_trie(&trie, 11);
    let ser = SerializedDag::from_dag(&dag);
    let lc = LcTrie::from_trie(&trie);
    let mb = MultibitDag::from_trie(&trie, 4);

    const KEY_COUNT: usize = 65_536;
    let mut rng = Xoshiro256::seed_from_u64(0x7AB2);
    let uniform_addrs: Vec<u32> = uniform(&mut rng, KEY_COUNT);
    // CAIDA-trace stand-in: Zipf-ranked destinations over the FIB's own
    // prefixes (exponent 1.0 ≈ measured traffic skew). Hot prefixes keep
    // their walk paths cache-resident, so this bounds the *best* case the
    // way uniform keys bound the worst.
    let zipf_model = ZipfTrace::new(&trie, 1.0);
    let mut zrng = Xoshiro256::seed_from_u64(0x21BF);
    let zipf_addrs: Vec<u32> = (0..KEY_COUNT)
        .map(|_| zipf_model.sample(&mut zrng))
        .collect();
    // The dedup control: the same Zipf depth profile with every address
    // distinct, so popularity locality is removed while depth bias stays.
    // Comparing zipf / zipf-dedup / uniform attributes the zipf slowdown
    // (see README → "Why zipf keys are slower than uniform").
    let mut drng = Xoshiro256::seed_from_u64(0x5EED);
    let dedup_addrs: Vec<u32> = zipf_model.generate_dedup(&mut drng, KEY_COUNT);

    // Traffic heat: the zipf key stream *is* the traffic model. It is
    // sampled once into a block summary and drives both layouts — the
    // hot-slab cut every engine can front, and the vsdag stride DP that
    // lays its whole table out around the measured depth mass.
    let hot_config = HotConfig::for_width(32);
    let heat = HeatSummary::sample_addrs(hot_config.depth, zipf_addrs.iter().copied());
    let (slab, hot_stats) = HotSlab::compile(&trie, heat.entries(), &hot_config);
    println!(
        "hot slab: depth {} entries {} ({} impure, {} dropped) coverage {:.3}",
        slab.depth(),
        slab.occupied(),
        hot_stats.impure,
        hot_stats.dropped,
        hot_stats.coverage
    );
    let vs = VarStrideDag::from_trie_weighted(
        &trie,
        BuildConfig::default().vs_params(),
        Some((heat.entries(), heat.depth())),
    );
    let stride_histogram = format!(
        "[{}]",
        vs.stride_histogram()
            .iter()
            .map(|(s, c)| format!("[{s}, {c}]"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let engines: [(&str, &dyn FibEngine<u32>); 8] = [
        ("binary-trie", &trie),
        ("fib_trie", &lc),
        ("xbw-succinct", &xbw_s),
        ("xbw-entropy", &xbw_e),
        ("pdag", &dag),
        ("pdag-serialized", &ser),
        ("multibit-dag", &mb),
        ("vsdag", &vs),
    ];

    // Hand-rolled JSON: the workspace has no serializer dependency and
    // the schema is flat. Schema v4: one row per (engine, key model,
    // layout), v3 plus the heat-planned `vsdag` engine, whose rows carry
    // the stride histogram its DP chose. `layout: "hot"` rows serve the
    // same engine behind the shared traffic-compiled slab, and the top
    // level records the SIMD dispatch the gather kernels resolved to.
    //
    // Hot wrappers are monomorphized over the concrete engine (type
    // erasure only at the measurement boundary, same as the base rows):
    // the gate check and the inner walk inline together, so the bypass
    // overhead measured here is what a real deployment pays.
    let hot_trie = HotFib::new(&trie, slab.clone());
    let hot_lc = HotFib::new(&lc, slab.clone());
    let hot_xbw_s = HotFib::new(&xbw_s, slab.clone());
    let hot_xbw_e = HotFib::new(&xbw_e, slab.clone());
    let hot_dag = HotFib::new(&dag, slab.clone());
    let hot_ser = HotFib::new(&ser, slab.clone());
    let hot_mb = HotFib::new(&mb, slab.clone());
    let hot_vs = HotFib::new(&vs, slab.clone());
    let hot_engines: [&dyn FibLookup<u32>; 8] = [
        &hot_trie, &hot_lc, &hot_xbw_s, &hot_xbw_e, &hot_dag, &hot_ser, &hot_mb, &hot_vs,
    ];

    let assert_batch = std::env::var("FIB_BENCH_ASSERT").as_deref() == Ok("1");
    let mut rows = Vec::new();
    // vsdag's headline contract: the stride DP spends its slot budget on
    // the traffic-heavy deep paths, so zipf keys must resolve far faster
    // than on the fixed-stride multibit image the DP generalizes.
    // Captured here, asserted after the loop.
    let mut vs_scalar = (0.0f64, 0.0f64); // (uniform, zipf)
    let mut mb_zipf = 0.0f64;
    for (&(name, engine), &hot) in engines.iter().zip(hot_engines.iter()) {
        for (keys, addrs) in [
            ("uniform", &uniform_addrs),
            ("zipf", &zipf_addrs),
            ("zipf-dedup", &dedup_addrs),
        ] {
            let mut scalar = scalar_ns(engine, addrs);
            let mut batch = batch_ns(engine, addrs);
            if assert_batch {
                // Timing is noisy at the few-ns scale where the gated
                // batch path is the scalar walk plus call overhead; give
                // a marginal reading a couple of fresh measurements
                // before declaring a structural regression.
                for _ in 0..2 {
                    if batch <= scalar * 1.1 {
                        break;
                    }
                    scalar = scalar_ns(engine, addrs);
                    batch = batch_ns(engine, addrs);
                }
                assert!(
                    batch <= scalar * 1.1,
                    "{name}/{keys}: batch path {batch:.1} ns regresses scalar {scalar:.1} ns"
                );
            }
            let mut stream = stream_ns(engine, addrs);

            // The hot layout serves through the adaptive `HotFib`: the
            // gate watches the measured slab hit rate and routes traffic
            // the slab cannot help straight to the engine, so a hot
            // image never costs more than the probe-sampling overhead.
            let mut hscalar = scalar_ns(hot, addrs);
            let mut hbatch = batch_ns(hot, addrs);
            let mut hstream = stream_ns(hot, addrs);
            if assert_batch {
                // The slab probe costs a constant fraction of a ns, so a
                // purely multiplicative bound miscounts it on engines
                // whose whole walk is a few ns — hence the half-ns
                // absolute term. Marginal metrics are remeasured base and
                // hot back-to-back, each metric keeping its best attempt:
                // machine noise between the two measurements otherwise
                // dominates the gate overhead the guard is pinning, and
                // demanding one attempt where all three metrics pass at
                // once compounds that noise threefold.
                let hot_ok = |h: f64, b: f64| h <= b.mul_add(1.1, 0.5);
                let mut ok = [
                    hot_ok(hscalar, scalar),
                    hot_ok(hbatch, batch),
                    hot_ok(hstream, stream),
                ];
                for _ in 0..3 {
                    if ok.iter().all(|&o| o) {
                        break;
                    }
                    if !ok[0] {
                        scalar = scalar_ns(engine, addrs);
                        hscalar = scalar_ns(hot, addrs);
                        ok[0] = hot_ok(hscalar, scalar);
                    }
                    if !ok[1] {
                        batch = batch_ns(engine, addrs);
                        hbatch = batch_ns(hot, addrs);
                        ok[1] = hot_ok(hbatch, batch);
                    }
                    if !ok[2] {
                        stream = stream_ns(engine, addrs);
                        hstream = stream_ns(hot, addrs);
                        ok[2] = hot_ok(hstream, stream);
                    }
                }
                assert!(
                    ok.iter().all(|&o| o),
                    "{name}/{keys}: hot layout ({hscalar:.1}/{hbatch:.1}/{hstream:.1} ns) \
                     regresses base ({scalar:.1}/{batch:.1}/{stream:.1} ns) by >10 % + 0.5 ns"
                );
            }
            if name == "vsdag" {
                match keys {
                    "uniform" => vs_scalar.0 = scalar,
                    "zipf" => vs_scalar.1 = scalar,
                    _ => {}
                }
            } else if name == "multibit-dag" && keys == "zipf" {
                mb_zipf = scalar;
            }
            let extra = if name == "vsdag" {
                format!(", \"stride_histogram\": {stride_histogram}")
            } else {
                String::new()
            };
            let size_bits = FibLookup::<u32>::size_bytes(engine) * 8;
            println!(
                "{name:<18} {keys:<10} base scalar {scalar:>8.1} ns  batch {batch:>8.1} ns  \
                 stream {stream:>8.1} ns  {size_bits} bits"
            );
            rows.push(format!(
                "    {{\"engine\": \"{name}\", \"keys\": \"{keys}\", \"layout\": \"base\", \
                 \"median_ns_per_lookup\": {scalar:.1}, \
                 \"median_ns_per_lookup_batch\": {batch:.1}, \
                 \"median_ns_per_lookup_stream\": {stream:.1}, \"size_bits\": {size_bits}{extra}}}"
            ));
            let hot_bits = (FibLookup::<u32>::size_bytes(engine) + slab.size_bytes()) * 8;
            println!(
                "{name:<18} {keys:<10} hot  scalar {hscalar:>8.1} ns  batch {hbatch:>8.1} ns  \
                 stream {hstream:>8.1} ns  {hot_bits} bits"
            );
            rows.push(format!(
                "    {{\"engine\": \"{name}\", \"keys\": \"{keys}\", \"layout\": \"hot\", \
                 \"median_ns_per_lookup\": {hscalar:.1}, \
                 \"median_ns_per_lookup_batch\": {hbatch:.1}, \
                 \"median_ns_per_lookup_stream\": {hstream:.1}, \"size_bits\": {hot_bits}{extra}}}"
            ));
        }
    }
    if assert_batch {
        // The design gates of the variable-stride compilation.
        //
        // Depth gates are deterministic (no timing): the DP must place
        // its slots so the *expected walk depth* under the measured
        // traffic stays near the 1-hop floor for uniform keys and
        // within two hops for the zipf trace it was compiled from —
        // the structural quantity the DP minimizes. A ≤1.1x
        // *time* ratio between the two traces is not a meaningful gate:
        // most zipf mass sits below depth 12, a budgeted tree serves
        // those keys in two dependent probes, and no stride placement
        // sells two probes for one probe's latency while uniform keys
        // resolve in the root. What the DP does close is the absolute
        // gap, asserted on time below.
        let avg_hops = |addrs: &[u32]| {
            let total: u64 = addrs
                .iter()
                .map(|&a| u64::from(vs.lookup_with_depth(a).1))
                .sum();
            total as f64 / addrs.len() as f64
        };
        let (uni_hops, zipf_hops) = (avg_hops(&uniform_addrs), avg_hops(&zipf_addrs));
        assert!(
            uni_hops <= 1.2 && zipf_hops <= 2.0,
            "vsdag expected hops (uniform {uni_hops:.3}, zipf {zipf_hops:.3}) \
             exceed the 1.2/2.0 depth gates"
        );
        // The zipf-gap gate on time: the traffic-weighted placement
        // must cut the zipf scalar latency of the fixed stride-4
        // multibit image it generalizes by at least a fifth (measured
        // ~0.5x at taz 0.1 and ~0.7x at the CI smoke's 0.01 — tiny
        // tables are cache-resident for both engines, narrowing the
        // gap — so a real regression trips this at either scale while
        // machine noise cannot).
        let mut ratio = vs_scalar.1 / mb_zipf;
        for _ in 0..2 {
            if ratio <= 0.8 {
                break;
            }
            ratio = scalar_ns(&vs, &zipf_addrs) / scalar_ns(&mb, &zipf_addrs);
        }
        assert!(
            ratio <= 0.8,
            "vsdag zipf scalar is {ratio:.3}x the stride-4 multibit image's — the \
             traffic-weighted placement no longer closes the zipf gap \
             (vsdag {:.1} ns, multibit {mb_zipf:.1} ns)",
            vs_scalar.1
        );
        let (vs_bytes, mb_bytes) = (
            FibLookup::<u32>::size_bytes(&vs),
            FibLookup::<u32>::size_bytes(&mb),
        );
        assert!(
            vs_bytes as f64 <= mb_bytes as f64 * 1.5,
            "vsdag image {vs_bytes} B exceeds 1.5x the stride-4 multibit image {mb_bytes} B"
        );
    }
    let json = format!(
        "{{\n  \"schema\": \"fibcomp-bench-lookup/v4\",\n  \"instance\": \"{instance}\",\n  \
         \"scale\": {scale},\n  \"routes\": {},\n  \"key_count\": {KEY_COUNT},\n  \
         \"dispatch\": \"{}\",\n  \"hot_slab\": {{\"depth\": {}, \"entries\": {}, \
         \"coverage\": {:.4}}},\n  \"engines\": [\n{}\n  ]\n}}\n",
        trie.len(),
        simd_label(),
        slab.depth(),
        slab.occupied(),
        hot_stats.coverage,
        rows.join(",\n")
    );
    write_artifact(&out_path, &json);
}

// ---------------------------------------------------------------------
// Serve mode (BENCH_serve.json, schema v1)
// ---------------------------------------------------------------------

/// One serve-matrix measurement.
struct ServeCell {
    engine: &'static str,
    keys: &'static str,
    threads: usize,
    mlps: f64,
    p50: f64,
    p99: f64,
    packets: u64,
    drops: u64,
}

fn serve_engine<E>(
    name: &'static str,
    trie: &BinaryTrie<u32>,
    build: BuildConfig,
    duration: Duration,
    cells: &mut Vec<ServeCell>,
) where
    E: FibLookup<u32>
        + FibBuild<u32>
        + FibUpdate<u32>
        + ImageCodec<u32>
        + Clone
        + Send
        + Sync
        + 'static,
{
    let router: Router<u32, E> = Router::new(
        trie.clone(),
        RouterConfig {
            build,
            publish_every: None,
            ..RouterConfig::default()
        },
    );
    let pool = Forwarder::new();
    for keys in ["uniform", "zipf", "bursty"] {
        let model = KeyModel::parse(keys).expect("known model");
        for threads in [1usize, 2, 4] {
            let config = ForwarderConfig {
                threads,
                batch: 256,
                duration,
                pacing: PacingMode::Closed,
            };
            let reports = pool.run(router.snap_cell(), &config, |worker| {
                let mut stream = AddrStream::new(model, trie, 0xD1A1, worker as u64);
                move |buf: &mut Vec<u32>, n: usize| stream.fill(buf, n)
            });
            let (mlps, hist) = aggregate(&reports);
            let packets: u64 = reports.iter().map(|r| r.packets).sum();
            let drops: u64 = reports.iter().map(|r| r.drops).sum();
            assert!(
                reports.iter().all(|r| !r.epoch_regressed),
                "torn snapshot during serve benchmark"
            );
            println!(
                "{name:<18} {keys:<8} {threads} thr  {mlps:>7.2} Mlps  \
                 p50 {:>7.1} ns  p99 {:>7.1} ns  {packets} pkts",
                hist.p50(),
                hist.p99()
            );
            cells.push(ServeCell {
                engine: name,
                keys,
                threads,
                mlps,
                p50: hist.p50(),
                p99: hist.p99(),
                packets,
                drops,
            });
        }
    }
}

fn serve_mode() {
    let scale = scale_arg();
    let out_path = arg("--out=").unwrap_or_else(|| repo_root_path("BENCH_serve.json"));
    let duration_s: f64 = arg("--duration=").map_or(0.2, |s| {
        s.parse().expect("--duration=SECONDS must be a number")
    });
    let duration = Duration::from_secs_f64(duration_s);
    let instance = "taz";
    let trie = instance_fib(instance, scale, 0xF1B);

    let base = BuildConfig::default();
    let succinct = BuildConfig {
        xbw_storage: XbwStorage::Succinct,
        ..base
    };
    let mut cells = Vec::new();
    serve_engine::<SerializedDag<u32>>("pdag-serialized", &trie, base, duration, &mut cells);
    serve_engine::<MultibitDag<u32>>("multibit-dag", &trie, base, duration, &mut cells);
    serve_engine::<VarStrideDag<u32>>("vsdag", &trie, base, duration, &mut cells);
    serve_engine::<LcTrie<u32>>("fib_trie", &trie, base, duration, &mut cells);
    serve_engine::<XbwFib<u32>>("xbw-succinct", &trie, succinct, duration, &mut cells);

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"engine\": \"{}\", \"keys\": \"{}\", \"threads\": {}, \
                 \"mlookups_per_s\": {:.3}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \
                 \"packets\": {}, \"drops\": {}}}",
                c.engine, c.keys, c.threads, c.mlps, c.p50, c.p99, c.packets, c.drops
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"fibcomp-bench-serve/v1\",\n  \"instance\": \"{instance}\",\n  \
         \"scale\": {scale},\n  \"routes\": {},\n  \"batch\": 256,\n  \
         \"duration_s\": {duration_s},\n  \"host_cores\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        trie.len(),
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        rows.join(",\n")
    );
    write_artifact(&out_path, &json);
}

// ---------------------------------------------------------------------
// VRF mode (BENCH_vrf.json, schema v1)
// ---------------------------------------------------------------------

/// Dedup and throughput of the multi-tenant compiler at one fleet size.
///
/// The fleet is the standard acceptance workload: 64 tables derived from
/// taz with 90 % shared base routes and 10 % per-VRF churn. Lookups run
/// through the published [`fib_router::VrfSnapshot`] — the same bucketed
/// batch path the data plane uses — and every answer is checked against
/// the VRF's own oracle before any timing starts.
fn vrf_mode() {
    let scale = scale_arg();
    let out_path = arg("--out=").unwrap_or_else(|| repo_root_path("BENCH_vrf.json"));
    let overlap: f64 = arg("--overlap=").map_or(0.9, |s| {
        s.parse().expect("--overlap=FRACTION must be a number")
    });
    const FLEET: usize = 64;
    const SEED: u64 = 0xF1B;
    const KEY_COUNT: usize = 65_536;
    let assert_saving = std::env::var("FIB_BENCH_ASSERT").as_deref() == Ok("1");

    let fleet =
        instance_fleet("taz", scale, FLEET, overlap, SEED).expect("taz is a known instance");
    let mut rows = Vec::new();
    for n in [1usize, 16, FLEET] {
        let mut router: VrfSetRouter<u32> =
            VrfSetRouter::new(BuildConfig::default(), VrfPolicy::Shared);
        for (v, trie) in fleet.iter().take(n).enumerate() {
            router.insert_vrf(v as u32, trie.clone());
        }
        let compile_start = Instant::now();
        let snapshot = router.publish();
        let compile_s = compile_start.elapsed().as_secs_f64();
        let stats = snapshot.set().stats;
        let routes: u64 = fleet.iter().take(n).map(|t| t.len() as u64).sum();

        let keys: Vec<(u32, u32)> = mixed_keys(n, None, 0x7AB2, KEY_COUNT);
        for &(vrf, addr) in &keys {
            assert_eq!(
                snapshot.lookup(vrf, addr),
                fleet[vrf as usize].lookup(addr),
                "vrf {vrf} addr {addr:#x}: compiled set disagrees with its oracle"
            );
        }

        let mut passes = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            let mut acc = 0u64;
            for &(vrf, addr) in &keys {
                acc = acc.wrapping_add(u64::from(
                    snapshot
                        .lookup(black_box(vrf), black_box(addr))
                        .map_or(0, |nh| nh.index()),
                ));
            }
            black_box(acc);
            passes.push(start.elapsed().as_nanos() as f64 / keys.len() as f64);
        }
        let scalar = median(&passes);

        let mut out = vec![None; keys.len()];
        let mut scratch = VrfBatchScratch::new();
        let mut passes = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            snapshot.lookup_batch(black_box(&keys), &mut out, &mut scratch);
            black_box(&out);
            passes.push(start.elapsed().as_nanos() as f64 / keys.len() as f64);
        }
        let batch = median(&passes);

        let resident = stats.resident_bytes();
        let independent = stats.independent_bytes;
        let saved_pct = if independent == 0 {
            0.0
        } else {
            100.0 * stats.bytes_saved() as f64 / independent as f64
        };
        println!(
            "{n:>3} VRFs  {routes:>8} routes  sharing {:.2}x  resident {resident} B \
             vs independent {independent} B ({saved_pct:.1} % saved)  \
             scalar {:.1} Mlps  batch {:.1} Mlps  compile {compile_s:.2} s",
            stats.sharing_ratio(),
            1000.0 / scalar,
            1000.0 / batch,
        );
        if assert_saving && n == FLEET {
            assert!(
                resident as f64 <= independent as f64 * 0.7,
                "64-VRF arena {resident} B must be ≥30 % under independent compiles \
                 {independent} B"
            );
        }
        rows.push(format!(
            "    {{\"vrfs\": {n}, \"routes\": {routes}, \"unique_nodes\": {}, \
             \"total_nodes\": {}, \"sharing_ratio\": {:.4}, \"resident_bytes\": {resident}, \
             \"independent_bytes\": {independent}, \"saved_pct\": {saved_pct:.2}, \
             \"mlookups_per_s\": {:.3}, \"mlookups_per_s_batch\": {:.3}, \
             \"compile_s\": {compile_s:.3}}}",
            stats.unique_nodes,
            stats.total_nodes,
            stats.sharing_ratio(),
            1000.0 / scalar,
            1000.0 / batch,
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"fibcomp-bench-vrf/v1\",\n  \"instance\": \"taz\",\n  \
         \"scale\": {scale},\n  \"fleet\": {FLEET},\n  \"overlap\": {overlap},\n  \
         \"seed\": {SEED},\n  \"key_count\": {KEY_COUNT},\n  \"points\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    write_artifact(&out_path, &json);
}

fn write_artifact(out_path: &str, json: &str) {
    match std::fs::write(out_path, json) {
        Ok(()) => println!("[wrote {out_path}]"),
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
