//! `fibreport` — one-shot compressibility report for a FIB.
//!
//! ```sh
//! # From a route file in the tabular text format ("<prefix> <next-hop>"):
//! cargo run --release -p fib-bench --bin fibreport -- routes.txt
//!
//! # Or on a synthetic paper instance:
//! cargo run --release -p fib-bench --bin fibreport -- --instance=taz --scale=0.1
//! ```
//!
//! Prints the Section 2 entropy metrics, the Eq. (2)/(3) barrier
//! suggestions, and the size of every representation in the workspace —
//! i.e. a Table 1 row for *your* FIB.

use fib_bench::{f, instance_fib, kb, scale_arg};
use fib_core::{
    lambda, FibEntropy, FibLookup, MultibitDag, PrefixDag, SerializedDag, XbwFib, XbwStorage,
};
use fib_succinct::shannon_entropy;
use fib_trie::stats::{next_hop_count, route_label_histogram, PrefixLenHistogram};
use fib_trie::{io, BinaryTrie, LcTrie};

fn load() -> Option<BinaryTrie<u32>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for arg in &args {
        if let Some(name) = arg.strip_prefix("--instance=") {
            return Some(instance_fib(name, scale_arg(), 0xF1B));
        }
    }
    let path = args.iter().find(|a| !a.starts_with("--"))?;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match io::parse_routes::<u32>(&text) {
        Ok(routes) => Some(routes.into_iter().collect()),
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let Some(trie) = load() else {
        eprintln!("usage: fibreport <routes.txt> | --instance=<name> [--scale=X]");
        eprintln!("instances: taz hbone access(d) access(v) mobile as1221 as4637 as6447 as6730 fib_600k fib_1m");
        std::process::exit(2);
    };

    let hist = route_label_histogram(&trie);
    let counts: Vec<u64> = hist.values().copied().collect();
    let lens = PrefixLenHistogram::from_trie(&trie);
    println!("routes:            {}", trie.len());
    println!("next-hops (δ):     {}", next_hop_count(&trie));
    println!("route H0:          {:.3} bits", shannon_entropy(&counts));
    println!("mean prefix len:   {:.2}", lens.mean());

    let metrics = FibEntropy::of_trie(&trie);
    println!("\n-- normal form (Section 2) --");
    println!("leaves n:          {}", metrics.n_leaves);
    println!("leaf H0:           {:.3} bits", metrics.h0);
    println!(
        "info bound I:      {} KB",
        f(metrics.info_bound_kbytes(), 1)
    );
    println!("entropy E:         {} KB", f(metrics.entropy_kbytes(), 1));

    let l2 = lambda::barrier_info(metrics.n_leaves, metrics.delta, 32);
    let l3 = lambda::barrier_entropy(metrics.n_leaves, metrics.h0, 32);
    println!("\n-- barrier suggestions --");
    println!("λ (Eq. 2):         {l2}");
    println!("λ (Eq. 3):         {l3}");

    let lam = l3.min(25);
    let dag = PrefixDag::from_trie(&trie, lam);
    let ser = SerializedDag::from_dag(&dag);
    let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
    let xbw_s = XbwFib::build(&trie, XbwStorage::Succinct);
    let lc = LcTrie::from_trie(&trie);
    let mb4 = MultibitDag::from_trie(&trie, 4);

    println!("\n-- representations --");
    println!("{:<28}{:>12}  {:>8}", "engine", "size", "ν (vs E)");
    let e_bits = metrics.entropy_bits();
    let row = |name: &str, bytes: usize| {
        println!(
            "{:<28}{:>9} KB  {:>8}",
            name,
            kb(bytes),
            f(bytes as f64 * 8.0 / e_bits, 2)
        );
    };
    row("binary trie", trie.size_bytes());
    row("fib_trie (kernel model)", lc.kernel_model_bytes());
    row("XBW-b succinct", FibLookup::<u32>::size_bytes(&xbw_s));
    row("XBW-b entropy", FibLookup::<u32>::size_bytes(&xbw));
    row(
        &format!("prefix DAG (λ={lam}, model)"),
        dag.model_size_bits() / 8,
    );
    row(&format!("pDAG serialized (λ={lam})"), ser.size_bytes());
    row("multibit DAG (stride 4)", mb4.size_bytes());
    println!("\nfold: {:?}", dag.stats());
}
