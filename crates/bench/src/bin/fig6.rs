//! Reproduces **Fig. 6**: storage size and compression efficiency ν of the
//! prefix DAG (and XBW-b) on FIBs whose next-hops are re-drawn from a
//! Bernoulli(p) distribution, as p sweeps the entropy range.
//!
//! The paper regenerates the next-hops of `access(d)` with two labels
//! (first with probability p, second with 1−p) and observes ν ≈ 3 across
//! the range, degrading only as H0 → 0 where the DAG's fixed overhead
//! dominates the vanishing entropy bound.
//!
//! Run with `--scale=0.1` for a quick pass.

use fib_bench::{f, kb, print_table, scale_arg, write_tsv};
use fib_core::{FibEntropy, PrefixDag, SerializedDag, XbwFib, XbwStorage};
use fib_trie::BinaryTrie;
use fib_workload::rng::Xoshiro256;
use fib_workload::{FibSpec, LabelModel};

fn main() {
    let scale = scale_arg();
    let n_prefixes = ((444_513.0 * scale) as usize).max(64);
    println!("Fig. 6 reproduction: Bernoulli next-hops on an access(d)-shaped FIB");
    println!("(N = {n_prefixes}, λ = 11)");

    // One fixed prefix structure; only the labels change per data point —
    // exactly the paper's setup ("we regenerated the next-hops").
    let mut rng = Xoshiro256::seed_from_u64(0xF16);
    let skeleton: BinaryTrie<u32> = FibSpec {
        n_prefixes,
        max_len: 25,
        depth_bias: 0.35,
        labels: LabelModel::Uniform { delta: 2 },
        spatial_correlation: 0.0,
        default_route: true,
    }
    .generate(&mut rng);
    let prefixes: Vec<_> = skeleton.iter().map(|(p, _)| p).collect();

    let mut rows = Vec::new();
    for &p in &[0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5] {
        let model = LabelModel::Bernoulli { p };
        let sampler = model.sampler();
        let mut rng = Xoshiro256::seed_from_u64((p * 1e6) as u64);
        let trie: BinaryTrie<u32> = prefixes
            .iter()
            .map(|&pre| (pre, sampler.sample(&mut rng)))
            .collect();

        let metrics = FibEntropy::of_trie(&trie);
        let dag = PrefixDag::from_trie(&trie, 11);
        let ser = SerializedDag::from_dag(&dag);
        let xbw = XbwFib::build(&trie, XbwStorage::Entropy);

        // ν is computed on the pointer-model size (§4.2's memory model),
        // which is what Theorems 1-2 bound; the serialized image adds the
        // fixed 2^λ root array on top.
        let model_bits = dag.model_size_bits() as f64;
        let nu = model_bits / metrics.entropy_bits();
        rows.push(vec![
            f(p, 3),
            f(model.h0(), 3),
            f(metrics.h0, 3),
            kb((metrics.entropy_bits() / 8.0) as usize),
            kb((model_bits / 8.0) as usize),
            kb(ser.size_bytes()),
            kb(xbw.size_bytes()),
            f(nu, 2),
        ]);
        eprintln!("p={p}: H0(model)={:.3} ν={nu:.2}", model.h0());
    }

    let header = [
        "p",
        "H0 model",
        "H0 leaves",
        "E [KB]",
        "pDAG [KB]",
        "serial [KB]",
        "XBW-b [KB]",
        "ν",
    ];
    print_table(
        "Fig. 6: size and efficiency vs Bernoulli parameter",
        &header,
        &rows,
    );
    write_tsv("fig6", &header, &rows);

    println!("\nShape checks vs the paper:");
    println!("- storage grows with H0 (≈50 → ≈200 KB across the sweep at full scale);");
    println!("- ν hovers around 3 for moderate H0;");
    println!("- ν spikes as p → 0 (entropy bound vanishes faster than the DAG).");
}
