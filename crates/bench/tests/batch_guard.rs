//! The batch path must win (or at least never lose) everywhere.
//!
//! PR 7 added residency gates because the per-chunk lockstep kernels only
//! paid off when the structure missed cache: on a cache-resident FIB the
//! lockstep bookkeeping was pure overhead, so the batch entry points fell
//! back to the scalar walk below
//! `fib_succinct::mem::PREFETCH_WORTHWHILE_BYTES`. The XBW kernel has
//! since moved to a rolling lane refill that wins at every table size
//! (see `xbw_lane_bench.rs`) and dropped its gate; the serialized and
//! vsdag batch kernels followed with pull-loop / first-step-fused
//! refill variants and dropped theirs too. The remaining flat engines
//! keep the residency gate. Either way this guard pins the
//! contract the lookup bench asserts under `FIB_BENCH_ASSERT=1`: for every
//! engine, at the committed BENCH_lookup scale (taz 0.1), the batched
//! median is at most 1.1x the scalar median.
//!
//! Timing tests are noisy by nature: each engine gets a few attempts and
//! the *best* attempt must clear the bar, so a scheduler hiccup cannot
//! fail the suite while a real regression (batch structurally slower, as
//! the ungated kernels were) still trips it every time.

use std::time::Instant;

use fib_bench::instance_fib;
use fib_core::{
    FibEngine, MultibitDag, PrefixDag, SerializedDag, VarStrideDag, VsParams, XbwFib, XbwStorage,
};
use fib_trie::{LcTrie, NextHop};
use fib_workload::rng::Xoshiro256;
use fib_workload::traces;

const SAMPLES: usize = 9;
const ATTEMPTS: usize = 4;
const HEADROOM: f64 = 1.1;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn scalar_ns(engine: &dyn FibEngine<u32>, addrs: &[u32]) -> f64 {
    let samples = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let mut acc = 0u64;
            for &a in addrs {
                acc = acc.wrapping_add(u64::from(
                    engine.lookup(a).map_or(u32::MAX, |nh| nh.index()),
                ));
            }
            std::hint::black_box(acc);
            start.elapsed().as_nanos() as f64 / addrs.len() as f64
        })
        .collect();
    median(samples)
}

fn batch_ns(engine: &dyn FibEngine<u32>, addrs: &[u32], out: &mut [Option<NextHop>]) -> f64 {
    let samples = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            engine.lookup_batch(addrs, out);
            std::hint::black_box(&out[..]);
            start.elapsed().as_nanos() as f64 / addrs.len() as f64
        })
        .collect();
    median(samples)
}

#[test]
fn batch_never_regresses_scalar() {
    let trie = instance_fib("taz", 0.1, 0xF1B);
    let lc = LcTrie::with_params(&trie, 0.5, 16);
    let xbw_s = XbwFib::build(&trie, XbwStorage::Succinct);
    let xbw_e = XbwFib::build(&trie, XbwStorage::Entropy);
    let dag = PrefixDag::from_trie(&trie, 11);
    let ser = SerializedDag::from_dag(&dag);
    let mb = MultibitDag::from_trie(&trie, 8);
    let vs = VarStrideDag::from_trie(&trie, VsParams::default());
    let engines: Vec<&dyn FibEngine<u32>> = vec![&trie, &lc, &xbw_s, &xbw_e, &dag, &ser, &mb, &vs];

    let zipf = traces::ZipfTrace::new(&trie, 1.0);
    let addrs = zipf.generate(&mut Xoshiro256::seed_from_u64(0xBA7C), 4096);
    let mut out = vec![None; addrs.len()];

    for engine in engines {
        let mut best = f64::INFINITY;
        let mut last = (0.0, 0.0);
        for _ in 0..ATTEMPTS {
            let scalar = scalar_ns(engine, &addrs);
            let batch = batch_ns(engine, &addrs, &mut out);
            best = best.min(batch / scalar);
            last = (scalar, batch);
            if best <= HEADROOM {
                break;
            }
        }
        // The 1.1x bar is a property of optimized code: the refill
        // kernels' lane bookkeeping compiles away in release but is
        // real instruction count in debug, where it loses to the plain
        // walk by design. Debug runs still exercise both paths above
        // (allocation, aliasing, poison handling); the release bar is
        // enforced here under --release and by benchdump's
        // FIB_BENCH_ASSERT run in CI.
        if cfg!(debug_assertions) {
            continue;
        }
        assert!(
            best <= HEADROOM,
            "{}: batch path regresses scalar in every attempt \
             (last: batch {:.1} ns vs scalar {:.1} ns, best ratio {:.3})",
            engine.name(),
            last.1,
            last.0,
            best
        );
    }
}
