//! Microbench behind the PR-10 XBW batch retune: scalar vs interleaved
//! walk on the *cache-resident* taz 0.1 shape string, where the v3
//! numbers showed batch losing (85.1 ns vs 83.4 ns scalar) and the
//! residency gate papering over it by dispatching to the scalar walk.
//!
//! The retuned kernel replaces the per-chunk lockstep (all eight lanes
//! wait for the slowest chunk member) with a rolling lane refill, so the
//! interleave overlaps the serial rank/access dependency chains even when
//! every probe hits cache. Run it by hand to reproduce the numbers quoted
//! in `XBW_BATCH_LANES`'s doc comment:
//!
//! ```text
//! cargo test -p fib-bench --release --test xbw_lane_bench -- --ignored --nocapture
//! ```
//!
//! Ignored by default: it is a measurement probe, not a pass/fail guard —
//! `batch_guard.rs` owns the regression assertion.

use std::time::Instant;

use fib_bench::instance_fib;
use fib_core::{XbwFib, XbwStorage};
use fib_trie::NextHop;
use fib_workload::rng::Xoshiro256;
use fib_workload::traces;

const SAMPLES: usize = 15;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn bench(label: &str, addrs: &[u32], mut run: impl FnMut(&[u32])) -> f64 {
    let ns = median(
        (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                run(addrs);
                start.elapsed().as_nanos() as f64 / addrs.len() as f64
            })
            .collect(),
    );
    println!("  {label:<22} {ns:6.1} ns/lookup");
    ns
}

#[test]
#[ignore = "measurement probe; run with --ignored --nocapture"]
fn xbw_batch_vs_scalar_cache_resident() {
    let trie = instance_fib("taz", 0.1, 0xF1B);
    let fib = XbwFib::build(&trie, XbwStorage::Succinct);
    println!(
        "xbw-succinct taz 0.1: {} bytes ({} leaves) — cache-resident",
        fib.size_bytes(),
        fib.n_leaves()
    );

    let mut rng = Xoshiro256::seed_from_u64(0xBA7C);
    let uniform = traces::uniform::<u32, _>(&mut rng, 16384);
    let zipf = traces::ZipfTrace::new(&trie, 1.0).generate(&mut rng, 16384);
    let mut out = vec![None::<NextHop>; 16384];

    for (name, addrs) in [("uniform", &uniform), ("zipf", &zipf)] {
        println!("{name}:");
        let scalar = bench("scalar", addrs, |a| {
            let mut acc = 0u64;
            for &x in a {
                acc = acc.wrapping_add(u64::from(fib.lookup(x).map_or(u32::MAX, |nh| nh.index())));
            }
            std::hint::black_box(acc);
        });
        let batch = bench("batch (refill)", addrs, |a| {
            fib.lookup_batch(a, &mut out);
            std::hint::black_box(&out[..]);
        });
        let stream = bench("stream", addrs, |a| {
            fib.lookup_stream(a, &mut out);
            std::hint::black_box(&out[..]);
        });
        println!(
            "  batch/scalar {:.3}x, stream/scalar {:.3}x",
            batch / scalar,
            stream / scalar
        );
    }
}
