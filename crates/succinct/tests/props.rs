//! Property-based tests: every succinct structure must agree with a naive
//! reference implementation on arbitrary inputs.

use fib_succinct::{BitVec, IntVec, RrrVec, RsBitVec, WaveletShape, WaveletTree};
use proptest::prelude::*;

fn naive_rank1(bits: &[bool], i: usize) -> usize {
    bits[..i].iter().filter(|&&b| b).count()
}

fn naive_select(bits: &[bool], value: bool, q: usize) -> Option<usize> {
    let mut seen = 0;
    for (i, &b) in bits.iter().enumerate() {
        if b == value {
            seen += 1;
            if seen == q {
                return Some(i);
            }
        }
    }
    None
}

proptest! {
    #[test]
    fn rsvec_rank_select_match_naive(bits in prop::collection::vec(any::<bool>(), 0..2000)) {
        let rs = RsBitVec::new(BitVec::from_bools(&bits));
        prop_assert_eq!(rs.count_ones(), bits.iter().filter(|&&b| b).count());
        for i in 0..=bits.len() {
            prop_assert_eq!(rs.rank1(i), naive_rank1(&bits, i));
        }
        for q in 1..=bits.len() + 1 {
            prop_assert_eq!(rs.select1(q), naive_select(&bits, true, q));
            prop_assert_eq!(rs.select0(q), naive_select(&bits, false, q));
        }
    }

    #[test]
    fn rrr_matches_naive(bits in prop::collection::vec(any::<bool>(), 0..1500)) {
        let rrr = RrrVec::new(&BitVec::from_bools(&bits));
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(rrr.get(i), b);
        }
        for i in 0..=bits.len() {
            prop_assert_eq!(rrr.rank1(i), naive_rank1(&bits, i));
        }
        for q in 1..=bits.len() + 1 {
            prop_assert_eq!(rrr.select1(q), naive_select(&bits, true, q));
            prop_assert_eq!(rrr.select0(q), naive_select(&bits, false, q));
        }
    }

    #[test]
    fn rrr_biased_density_roundtrips(
        seed in any::<u64>(),
        // density in 1/64ths so sparse and dense regimes are both hit
        density in 0u64..=64,
        len in 0usize..3000,
    ) {
        let mut x = seed | 1;
        let bits: Vec<bool> = (0..len).map(|_| {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            (x % 64) < density
        }).collect();
        let rrr = RrrVec::new(&BitVec::from_bools(&bits));
        let step = (len / 37).max(1);
        for i in (0..=len).step_by(step) {
            prop_assert_eq!(rrr.rank1(i), naive_rank1(&bits, i));
        }
    }

    #[test]
    fn intvec_roundtrips(values in prop::collection::vec(any::<u64>(), 0..500), width_off in 0u32..8) {
        let max = values.iter().copied().max().unwrap_or(0);
        let width = (fib_succinct::ceil_log2(max.saturating_add(1)) + width_off).min(64);
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|&v| v & mask).collect();
        let mut iv = IntVec::new(width);
        for &v in &masked {
            iv.push(v);
        }
        for (i, &v) in masked.iter().enumerate() {
            prop_assert_eq!(iv.get(i), v);
        }
    }

    #[test]
    fn wavelet_access_rank_select_match_naive(
        seq in prop::collection::vec(0u64..12, 0..600),
        huffman in any::<bool>(),
    ) {
        let shape = if huffman { WaveletShape::Huffman } else { WaveletShape::Balanced };
        let wt = WaveletTree::new(&seq, 12, shape);
        for (i, &s) in seq.iter().enumerate() {
            prop_assert_eq!(wt.access(i), s);
        }
        for sym in 0..12u64 {
            let mut count = 0;
            for (i, &actual) in seq.iter().enumerate() {
                prop_assert_eq!(wt.rank_sym(sym, i), count);
                if actual == sym {
                    count += 1;
                    prop_assert_eq!(wt.select_sym(sym, count), Some(i));
                }
            }
            prop_assert_eq!(wt.select_sym(sym, count + 1), None);
        }
    }

    #[test]
    fn huffman_codes_decode_uniquely(freqs in prop::collection::vec(0u64..1000, 1..40)) {
        let codes = fib_succinct::huffman::build_codes(&freqs);
        let live: Vec<_> = codes.iter().filter(|c| c.len > 0).collect();
        // Prefix-freeness: no live code is a prefix of another.
        for (i, a) in live.iter().enumerate() {
            for b in live.iter().skip(i + 1) {
                let min_len = a.len.min(b.len);
                prop_assert_ne!(a.bits >> (a.len - min_len), b.bits >> (b.len - min_len));
            }
        }
        // Kraft equality for ≥2 live symbols (Huffman trees are complete).
        if live.len() >= 2 {
            let kraft: f64 = live.iter().map(|c| (0.5f64).powi(i32::from(c.len))).sum();
            prop_assert!((kraft - 1.0).abs() < 1e-9, "kraft sum {}", kraft);
        }
    }

    #[test]
    fn bitvec_push_bits_concatenation(fields in prop::collection::vec((any::<u64>(), 1u32..=64), 0..60)) {
        let mut bv = BitVec::new();
        let mut positions = Vec::new();
        for &(v, w) in &fields {
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            positions.push(bv.len());
            bv.push_bits(v & mask, w);
        }
        for (&(v, w), &pos) in fields.iter().zip(&positions) {
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            prop_assert_eq!(bv.get_bits(pos, w), v & mask);
        }
    }
}
