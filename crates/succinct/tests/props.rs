//! Property-based tests: every succinct structure must agree with a naive
//! reference implementation on arbitrary inputs.
//!
//! Inputs are drawn from the workspace's deterministic PRNG
//! (`fib_workload::rng`) rather than proptest, which cannot be fetched in
//! the offline build. Each test runs a fixed number of seeded cases (the
//! proptest default of 256); a failure message carries the case number, so
//! any counterexample reproduces exactly.

use fib_succinct::{BitVec, IntVec, RrrVec, RsBitVec, WaveletShape, WaveletTree};
use fib_workload::rng::{Rng, Xoshiro256};

const CASES: u64 = 256;

fn random_bools(rng: &mut impl Rng, max_len: usize) -> Vec<bool> {
    let len = rng.random_range(0..max_len);
    (0..len).map(|_| rng.random()).collect()
}

/// Positions of every bit equal to `value` — the linear-scan reference
/// that `rank`/`select` answers are checked against.
fn positions_of(bits: &[bool], value: bool) -> Vec<usize> {
    bits.iter()
        .enumerate()
        .filter_map(|(i, &b)| (b == value).then_some(i))
        .collect()
}

/// Naive prefix ranks: `ranks[i]` = number of set bits in `[0, i)`.
fn prefix_ranks(bits: &[bool]) -> Vec<usize> {
    let mut ranks = Vec::with_capacity(bits.len() + 1);
    let mut acc = 0;
    ranks.push(0);
    for &b in bits {
        acc += usize::from(b);
        ranks.push(acc);
    }
    ranks
}

#[test]
fn rsvec_rank_select_match_naive() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("rsvec_rank_select_match_naive", case);
        let bits = random_bools(&mut rng, 2000);
        let rs = RsBitVec::new(BitVec::from_bools(&bits));
        let ranks = prefix_ranks(&bits);
        let ones = positions_of(&bits, true);
        let zeros = positions_of(&bits, false);
        assert_eq!(rs.count_ones(), ones.len(), "case {case}");
        for (i, &r) in ranks.iter().enumerate() {
            assert_eq!(rs.rank1(i), r, "case {case}, rank1({i})");
        }
        for q in 1..=bits.len() + 1 {
            assert_eq!(
                rs.select1(q),
                ones.get(q - 1).copied(),
                "case {case}, select1({q})"
            );
            assert_eq!(
                rs.select0(q),
                zeros.get(q - 1).copied(),
                "case {case}, select0({q})"
            );
        }
    }
}

/// Length near word/line/superblock boundaries or plain random, with
/// all-zeros / all-ones / random fill — the shapes that break rank
/// directories.
fn boundary_shaped_bools(rng: &mut impl Rng, max_len: usize) -> Vec<bool> {
    let boundaries = [63, 64, 65, 383, 384, 385, 511, 512, 513, 2015, 2016, 2017];
    let len = if rng.random() {
        *rng.choose(&boundaries).unwrap()
    } else {
        rng.random_range(0..max_len)
    };
    match rng.random_range(0..4u32) {
        0 => vec![false; len],
        1 => vec![true; len],
        _ => (0..len).map(|_| rng.random()).collect(),
    }
}

#[test]
fn rsvec_fused_access_rank1_matches_naive() {
    // ~100 randomized vectors: the fused primitive must agree with the
    // linear-scan reference bit-for-bit, including at the last index.
    for case in 0..100 {
        let mut rng = Xoshiro256::for_case("rsvec_fused_access_rank1_matches_naive", case);
        let bits = boundary_shaped_bools(&mut rng, 3000);
        let rs = RsBitVec::new(BitVec::from_bools(&bits));
        let mut ones = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            let (bit, rank) = rs.access_rank1(i);
            assert_eq!(bit, b, "case {case}, bit {i}");
            assert_eq!(rank, ones, "case {case}, rank at {i}");
            ones += usize::from(b);
        }
        assert_eq!(rs.rank1(bits.len()), ones, "case {case}, rank1(len)");
    }
}

#[test]
fn rrr_fused_access_rank1_matches_naive() {
    for case in 0..100 {
        let mut rng = Xoshiro256::for_case("rrr_fused_access_rank1_matches_naive", case);
        let bits = boundary_shaped_bools(&mut rng, 3000);
        let rrr = RrrVec::new(&BitVec::from_bools(&bits));
        let mut ones = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            let (bit, rank) = rrr.access_rank1(i);
            assert_eq!(bit, b, "case {case}, bit {i}");
            assert_eq!(rank, ones, "case {case}, rank at {i}");
            ones += usize::from(b);
        }
        assert_eq!(rrr.rank1(bits.len()), ones, "case {case}, rank1(len)");
    }
}

#[test]
fn rsvec_sampled_select_matches_naive_on_long_vectors() {
    // Vectors long enough (up to ~24k ones/zeros) that the sampled select
    // directory holds many hints and the binary search between two hints
    // is exercised, at varying densities.
    for case in 0..100 {
        let mut rng =
            Xoshiro256::for_case("rsvec_sampled_select_matches_naive_on_long_vectors", case);
        let density: u64 = rng.random_range(1..=63);
        let len: usize = rng.random_range(2000..48_000);
        let bits: Vec<bool> = (0..len)
            .map(|_| rng.random_range(0..64u64) < density)
            .collect();
        let rs = RsBitVec::new(BitVec::from_bools(&bits));
        let ones = positions_of(&bits, true);
        let zeros = positions_of(&bits, false);
        // Probe around every sample boundary plus a pseudorandom spread.
        let mut probes: Vec<usize> = (0..ones.len()).step_by(511).collect();
        probes.extend((0..32).map(|_| rng.random_range(0..ones.len().max(1))));
        for q0 in probes {
            let q = q0 + 1;
            assert_eq!(
                rs.select1(q),
                ones.get(q - 1).copied(),
                "case {case}, select1({q})"
            );
        }
        let mut probes: Vec<usize> = (0..zeros.len()).step_by(511).collect();
        probes.extend((0..32).map(|_| rng.random_range(0..zeros.len().max(1))));
        for q0 in probes {
            let q = q0 + 1;
            assert_eq!(
                rs.select0(q),
                zeros.get(q - 1).copied(),
                "case {case}, select0({q})"
            );
        }
        assert_eq!(rs.select1(ones.len() + 1), None, "case {case}");
        assert_eq!(rs.select0(zeros.len() + 1), None, "case {case}");
    }
}

#[test]
fn rrr_matches_naive() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("rrr_matches_naive", case);
        let bits = random_bools(&mut rng, 1500);
        let rrr = RrrVec::new(&BitVec::from_bools(&bits));
        let ranks = prefix_ranks(&bits);
        let ones = positions_of(&bits, true);
        let zeros = positions_of(&bits, false);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(rrr.get(i), b, "case {case}, get({i})");
        }
        for (i, &r) in ranks.iter().enumerate() {
            assert_eq!(rrr.rank1(i), r, "case {case}, rank1({i})");
        }
        for q in 1..=bits.len() + 1 {
            assert_eq!(
                rrr.select1(q),
                ones.get(q - 1).copied(),
                "case {case}, select1({q})"
            );
            assert_eq!(
                rrr.select0(q),
                zeros.get(q - 1).copied(),
                "case {case}, select0({q})"
            );
        }
    }
}

#[test]
fn rrr_biased_density_roundtrips() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("rrr_biased_density_roundtrips", case);
        // Density in 1/64ths so sparse and dense regimes are both hit.
        let density: u64 = rng.random_range(0..=64);
        let len: usize = rng.random_range(0..3000);
        let bits: Vec<bool> = (0..len)
            .map(|_| rng.random_range(0..64u64) < density)
            .collect();
        let rrr = RrrVec::new(&BitVec::from_bools(&bits));
        let ranks = prefix_ranks(&bits);
        let step = (len / 37).max(1);
        for i in (0..=len).step_by(step) {
            assert_eq!(
                rrr.rank1(i),
                ranks[i],
                "case {case}, density {density}, rank1({i})"
            );
        }
    }
}

#[test]
fn intvec_roundtrips() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("intvec_roundtrips", case);
        let n: usize = rng.random_range(0..500);
        let values: Vec<u64> = (0..n).map(|_| rng.random()).collect();
        let width_off: u32 = rng.random_range(0..8);
        let max = values.iter().copied().max().unwrap_or(0);
        let width = (fib_succinct::ceil_log2(max.saturating_add(1)) + width_off).min(64);
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let masked: Vec<u64> = values.iter().map(|&v| v & mask).collect();
        let mut iv = IntVec::new(width);
        for &v in &masked {
            iv.push(v);
        }
        for (i, &v) in masked.iter().enumerate() {
            assert_eq!(iv.get(i), v, "case {case}, width {width}, index {i}");
        }
    }
}

#[test]
fn wavelet_access_rank_select_match_naive() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("wavelet_access_rank_select_match_naive", case);
        let n: usize = rng.random_range(0..600);
        let seq: Vec<u64> = (0..n).map(|_| rng.random_range(0..12u64)).collect();
        let huffman: bool = rng.random();
        let shape = if huffman {
            WaveletShape::Huffman
        } else {
            WaveletShape::Balanced
        };
        let wt = WaveletTree::new(&seq, 12, shape);
        for (i, &s) in seq.iter().enumerate() {
            assert_eq!(wt.access(i), s, "case {case}, access({i})");
        }
        for sym in 0..12u64 {
            let mut count = 0;
            for (i, &actual) in seq.iter().enumerate() {
                assert_eq!(
                    wt.rank_sym(sym, i),
                    count,
                    "case {case}, rank_sym({sym}, {i})"
                );
                if actual == sym {
                    count += 1;
                    assert_eq!(
                        wt.select_sym(sym, count),
                        Some(i),
                        "case {case}, select_sym({sym}, {count})"
                    );
                }
            }
            assert_eq!(
                wt.select_sym(sym, count + 1),
                None,
                "case {case}, sym {sym}"
            );
        }
    }
}

#[test]
fn huffman_codes_decode_uniquely() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("huffman_codes_decode_uniquely", case);
        let n: usize = rng.random_range(1..40);
        let freqs: Vec<u64> = (0..n).map(|_| rng.random_range(0..1000u64)).collect();
        let codes = fib_succinct::huffman::build_codes(&freqs);
        let live: Vec<_> = codes.iter().filter(|c| c.len > 0).collect();
        // Prefix-freeness: no live code is a prefix of another.
        for (i, a) in live.iter().enumerate() {
            for b in live.iter().skip(i + 1) {
                let min_len = a.len.min(b.len);
                assert_ne!(
                    a.bits >> (a.len - min_len),
                    b.bits >> (b.len - min_len),
                    "case {case}: code is a prefix of another"
                );
            }
        }
        // Kraft equality for ≥2 live symbols (Huffman trees are complete).
        if live.len() >= 2 {
            let kraft: f64 = live.iter().map(|c| (0.5f64).powi(i32::from(c.len))).sum();
            assert!((kraft - 1.0).abs() < 1e-9, "case {case}: kraft sum {kraft}");
        }
    }
}

#[test]
fn bitvec_push_bits_concatenation() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("bitvec_push_bits_concatenation", case);
        let n: usize = rng.random_range(0..60);
        let fields: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.random(), rng.random_range(1..=64u32)))
            .collect();
        let mut bv = BitVec::new();
        let mut positions = Vec::new();
        for &(v, w) in &fields {
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            positions.push(bv.len());
            bv.push_bits(v & mask, w);
        }
        for (&(v, w), &pos) in fields.iter().zip(&positions) {
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            assert_eq!(bv.get_bits(pos, w), v & mask, "case {case}, field at {pos}");
        }
    }
}
