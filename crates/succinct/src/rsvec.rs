//! Bit vector with single-cache-line rank and sampled constant-time
//! select, split into an owned builder ([`RsBitVec`]) and a zero-copy
//! view ([`RsBitVecRef`]) per the crate's storage discipline.

use crate::bits::BitVec;
use crate::broadword::select_in_word;
use crate::storage::{
    self, meta_usize, pad_to_block, push_u32s, words_for_u32s, Arena, StorageError, BLOCK_WORDS,
};

/// Data bits per directory line.
const LINE_BITS: usize = 384;
/// Data words per directory line.
const LINE_WORDS: usize = LINE_BITS / 64;
/// One select sample (a line hint) is kept per this many ones/zeros.
const SELECT_SAMPLE: usize = 512;

/// A static bit vector whose bits and rank directory are interleaved into
/// aligned 64-byte lines (in the cs-poppy / rank9 lineage).
///
/// Each line is one 64-byte block of the backing [`Arena`]:
///
/// * word 0 — ones strictly before this line's data bits (absolute),
/// * word 1 — five 9-bit intra-line prefix counts (ones before data words
///   1..=5, packed LSB-first; bits 45–63 stay zero),
/// * words 2–7 — the 384 data bits.
///
/// The arena keeps every line on a cache-line boundary, so `rank1`, `get`
/// and the fused [`RsBitVec::access_rank1`] cost **one** cache-line touch.
/// After the lines come the two select-sample directories (`u32` line
/// hints packed two per word): `select1`/`select0` consult the hint
/// sampled every 512 ones (zeros), binary-search only the handful of
/// lines between two hints, and finish with a branchless in-word select
/// ([`select_in_word`]) — O(1) for any density that is not pathologically
/// clustered, O(log n) worst case.
///
/// Space: the in-line directory costs 2 words per 6 data words (33.3 %)
/// and the select samples at most ≈6.3 % more — marginally above the old
/// two-array layout's 37.5 %, traded for the 3× fewer lines per query.
/// This is the *plain* index; use [`crate::RrrVec`] when compression
/// matters.
///
/// All query code lives on the borrowed [`RsBitVecRef`]; this owned type
/// freezes its words into an arena at construction and forwards, so the
/// hot paths are identical whether the words came from this builder or
/// from a loaded FIB image.
#[derive(Clone, Debug)]
pub struct RsBitVec {
    arena: Arena,
    len: usize,
    ones: usize,
    n_lines: usize,
    n_sel1: usize,
    n_sel0: usize,
}

/// Borrowed zero-copy view of an [`RsBitVec`]: the query surface over any
/// 64-byte-aligned word run, owned or loaded.
#[derive(Clone, Copy, Debug)]
pub struct RsBitVecRef<'a> {
    /// The whole payload: interleaved lines (8 words each, 64-byte
    /// aligned, starting at word 0) followed by the two packed-`u32`
    /// select directories. One slice + offsets keeps [`RsBitVec::view`]
    /// nearly free, which matters because every owned query goes through
    /// it.
    words: &'a [u64],
    /// Word offset of `sel1` (`sel1[j]` = line of the `(512·j+1)`-th one).
    sel1_off: usize,
    /// Word offset of `sel0`.
    sel0_off: usize,
    n_lines: usize,
    len: usize,
    ones: usize,
    n_sel1: usize,
    n_sel0: usize,
}

#[cold]
#[inline(never)]
fn index_oob(i: usize, len: usize) -> ! {
    panic!("bit index {i} out of bounds (len {len})");
}

/// Select samples needed for `count` ones (or zeros).
fn sel_entries(count: usize) -> usize {
    if count == 0 {
        0
    } else {
        (count - 1) / SELECT_SAMPLE + 1
    }
}

impl RsBitVec {
    /// Builds the interleaved lines and select directories over `bits`.
    #[must_use]
    pub fn new(bits: BitVec) -> Self {
        let words = bits.words();
        let len = bits.len();
        let n_lines = words.len().div_ceil(LINE_WORDS).max(1);
        let mut arena_words = Vec::with_capacity(n_lines * BLOCK_WORDS);
        let mut total: u64 = 0;
        let mut line_ones = Vec::with_capacity(n_lines + 1);
        for s in 0..n_lines {
            line_ones.push(total as usize);
            let base = arena_words.len();
            arena_words.push(total);
            arena_words.push(0); // subs, patched below
            let mut subs = 0u64;
            let mut within: u64 = 0;
            for w in 0..LINE_WORDS {
                if w > 0 {
                    subs |= within << (9 * (w - 1));
                }
                let wi = s * LINE_WORDS + w;
                if wi < words.len() {
                    arena_words.push(words[wi]);
                    within += u64::from(words[wi].count_ones());
                } else {
                    arena_words.push(0);
                }
            }
            arena_words[base + 1] = subs;
            total += within;
        }
        let ones = total as usize;
        line_ones.push(ones);

        // Select samples: the line holding every 512-th one/zero.
        let mut sel1 = Vec::with_capacity(sel_entries(ones));
        let mut sel0 = Vec::with_capacity(sel_entries(len - ones));
        let mut next1 = 1usize;
        let mut next0 = 1usize;
        for s in 0..n_lines {
            let ones_end = line_ones[s + 1];
            while next1 <= ones_end {
                sel1.push(s as u32);
                next1 += SELECT_SAMPLE;
            }
            let zeros_end = ((s + 1) * LINE_BITS).min(len) - ones_end;
            while next0 <= zeros_end {
                sel0.push(s as u32);
                next0 += SELECT_SAMPLE;
            }
        }
        let (n_sel1, n_sel0) = (sel1.len(), sel0.len());
        push_u32s(&mut arena_words, sel1);
        push_u32s(&mut arena_words, sel0);
        Self {
            arena: Arena::from_words(&arena_words),
            len,
            ones,
            n_lines,
            n_sel1,
            n_sel0,
        }
    }

    /// The borrowed view all queries run on.
    #[must_use]
    #[inline]
    pub fn view(&self) -> RsBitVecRef<'_> {
        let lines_end = self.n_lines * BLOCK_WORDS;
        RsBitVecRef {
            words: self.arena.words(),
            sel1_off: lines_end,
            sel0_off: lines_end + words_for_u32s(self.n_sel1),
            n_lines: self.n_lines,
            len: self.len,
            ones: self.ones,
            n_sel1: self.n_sel1,
            n_sel0: self.n_sel0,
        }
    }

    /// Serializes as one 8-word meta block followed by the arena words,
    /// padded to a 64-byte boundary. If `out` starts the structure on a
    /// 64-byte boundary, every line inside stays cache-line aligned.
    pub fn write_words(&self, out: &mut Vec<u64>) {
        debug_assert_eq!(out.len() % BLOCK_WORDS, 0, "section must start aligned");
        out.extend_from_slice(&[
            self.len as u64,
            self.ones as u64,
            self.n_lines as u64,
            self.n_sel1 as u64,
            self.n_sel0 as u64,
            0,
            0,
            0,
        ]);
        out.extend_from_slice(self.arena.words());
        pad_to_block(out);
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Total number of clear bits.
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.view().get(i)
    }

    /// Number of set bits in `[0, i)`.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        self.view().rank1(i)
    }

    /// Number of clear bits in `[0, i)`.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        self.view().rank0(i)
    }

    /// `rank1(i)` if `bit`, else `rank0(i)`.
    #[must_use]
    #[inline]
    pub fn rank_bit(&self, bit: bool, i: usize) -> usize {
        self.view().rank_bit(bit, i)
    }

    /// Fused `(get(i), rank1(i))` from the same single cache-line touch.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    #[inline]
    pub fn access_rank1(&self, i: usize) -> (bool, usize) {
        self.view().access_rank1(i)
    }

    /// Hints the prefetcher at the line holding bit `i` (see
    /// [`RsBitVecRef::prefetch`]).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        self.view().prefetch(i);
    }

    /// Position of the `q`-th set bit (`q ≥ 1`), or `None`.
    #[must_use]
    pub fn select1(&self, q: usize) -> Option<usize> {
        self.view().select1(q)
    }

    /// Position of the `q`-th clear bit (`q ≥ 1`), or `None`.
    #[must_use]
    pub fn select0(&self, q: usize) -> Option<usize> {
        self.view().select0(q)
    }

    /// `select1(q)` if `bit`, else `select0(q)`.
    #[must_use]
    pub fn select_bit(&self, bit: bool, q: usize) -> Option<usize> {
        self.view().select_bit(bit, q)
    }

    /// Footprint in bits: the interleaved lines (data + in-line
    /// directory) plus the select samples — exactly the payload a
    /// serialized form carries, so Table 2's size column tracks the real
    /// structure.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.n_lines * 512 + (self.n_sel1 + self.n_sel0) * 32
    }
}

impl<'a> RsBitVecRef<'a> {
    /// Parses a view from words written by [`RsBitVec::write_words`],
    /// borrowing — never copying — the payload. Returns the view and the
    /// number of words consumed.
    ///
    /// # Errors
    /// [`StorageError`] on truncated or structurally inconsistent input.
    pub fn from_words(words: &'a [u64]) -> Result<(Self, usize), StorageError> {
        let meta = storage::slice(words, 0, BLOCK_WORDS)?;
        let len = meta_usize(meta[0])?;
        let ones = meta_usize(meta[1])?;
        let n_lines = meta_usize(meta[2])?;
        let n_sel1 = meta_usize(meta[3])?;
        let n_sel0 = meta_usize(meta[4])?;
        if ones > len || len > n_lines.saturating_mul(LINE_BITS) {
            return Err(StorageError("rank vector counts inconsistent"));
        }
        if n_sel1 != sel_entries(ones) || n_sel0 != sel_entries(len - ones) {
            return Err(StorageError("select directory size inconsistent"));
        }
        let lines_words = n_lines
            .checked_mul(BLOCK_WORDS)
            .ok_or(StorageError("line count overflows"))?;
        let sel1_off = lines_words;
        let sel0_off = sel1_off + words_for_u32s(n_sel1);
        let payload_words = sel0_off + words_for_u32s(n_sel0);
        let payload = storage::slice(words, BLOCK_WORDS, payload_words)?;
        let consumed = (BLOCK_WORDS + payload_words).div_ceil(BLOCK_WORDS) * BLOCK_WORDS;
        if consumed > words.len() {
            return Err(StorageError("rank vector padding truncated"));
        }
        Ok((
            Self {
                words: payload,
                sel1_off,
                sel0_off,
                n_lines,
                len,
                ones,
                n_sel1,
                n_sel0,
            },
            consumed,
        ))
    }

    /// The pointer range of the borrowed payload words, for zero-copy
    /// assertions in tests.
    #[must_use]
    pub fn payload_ptr_range(&self) -> std::ops::Range<usize> {
        let start = self.words.as_ptr() as usize;
        start..start + std::mem::size_of_val(self.words)
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Total number of clear bits.
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// Hints the hardware prefetcher at the interleaved line holding bit
    /// `i`, so a later `access_rank1(i)` finds it resident. Out-of-range
    /// positions are ignored (prefetching is best-effort).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        crate::mem::prefetch_index(self.words, (i / LINE_BITS) * BLOCK_WORDS);
    }

    /// The 8-word line `s`, bounds-checked once (lines start at word 0).
    #[inline]
    fn line(&self, s: usize) -> &'a [u64; 8] {
        let base = s * BLOCK_WORDS;
        self.words[base..base + BLOCK_WORDS]
            .try_into()
            .expect("8-word line")
    }

    /// Ones strictly before line `s`; `s == n_lines()` reads the total.
    #[inline]
    fn ones_before(&self, s: usize) -> usize {
        if s >= self.n_lines {
            self.ones
        } else {
            self.words[s * BLOCK_WORDS] as usize
        }
    }

    /// Intra-line prefix count: ones before data word `w` (0–5) given the
    /// packed counts `subs`. Branchless: word 0 reads the always-zero top
    /// bits.
    #[inline]
    fn sub_count(subs: u64, w: usize) -> usize {
        ((subs >> ((w.wrapping_sub(1) & 7) * 9)) & 0x1FF) as usize
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            index_oob(i, self.len);
        }
        let line = self.line(i / LINE_BITS);
        (line[2 + (i % LINE_BITS) / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits in `[0, i)`.
    ///
    /// One aligned cache-line touch: absolute count, packed sub-count and
    /// the data word all come from the same line, finished by a masked
    /// popcount.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        if i > self.len {
            index_oob(i, self.len);
        }
        let s = i / LINE_BITS;
        if s >= self.n_lines {
            // Only reachable when i == len() and len() fills the lines
            // exactly.
            return self.ones;
        }
        let line = self.line(s);
        let w = (i % LINE_BITS) / 64;
        let r = line[0] as usize + Self::sub_count(line[1], w);
        // `!(MAX << bit)` keeps the low `bit` bits; bit == 0 masks to 0.
        let masked = line[2 + w] & !(u64::MAX << (i % 64));
        r + masked.count_ones() as usize
    }

    /// Number of clear bits in `[0, i)`.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// `rank1(i)` if `bit`, else `rank0(i)`.
    #[must_use]
    #[inline]
    pub fn rank_bit(&self, bit: bool, i: usize) -> usize {
        if bit {
            self.rank1(i)
        } else {
            self.rank0(i)
        }
    }

    /// Fused `(get(i), rank1(i))` from the same single cache-line touch:
    /// callers that need both (wavelet-tree descent, the XBW-b lookup
    /// loop) pay one memory dependence chain instead of two.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    #[inline]
    pub fn access_rank1(&self, i: usize) -> (bool, usize) {
        if i >= self.len {
            index_oob(i, self.len);
        }
        let line = self.line(i / LINE_BITS);
        let w = (i % LINE_BITS) / 64;
        let word = line[2 + w];
        let bit = i % 64;
        let rank = line[0] as usize
            + Self::sub_count(line[1], w)
            + (word & !(u64::MAX << bit)).count_ones() as usize;
        ((word >> bit) & 1 == 1, rank)
    }

    /// Position of the `q`-th set bit (`q ≥ 1`), or `None` if there are
    /// fewer than `q` set bits.
    ///
    /// The sampled directory narrows the search to the lines between two
    /// consecutive hints before binary-searching.
    #[must_use]
    pub fn select1(&self, q: usize) -> Option<usize> {
        if q == 0 || q > self.ones {
            return None;
        }
        // Hint: the line of the nearest sampled one at or below q. Hints
        // are clamped so a corrupted directory cannot index out of range.
        let j = (q - 1) / SELECT_SAMPLE;
        let mut lo = (self.sel_u32(self.sel1_off, j) as usize).min(self.n_lines - 1);
        let mut hi = if j + 1 < self.n_sel1 {
            (self.sel_u32(self.sel1_off, j + 1) as usize + 1).min(self.n_lines)
        } else {
            self.n_lines
        };
        // Largest line s with ones_before(s) < q.
        while lo + 1 < hi {
            let mid = usize::midpoint(lo, hi);
            if self.ones_before(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let s = lo;
        let line = self.line(s);
        let remaining = q - line[0] as usize;
        // Walk the packed 9-bit prefix counts to the word holding the hit.
        let mut w = 0usize;
        while w < LINE_WORDS - 1 && Self::sub_count(line[1], w + 1) < remaining {
            w += 1;
        }
        let within = remaining - Self::sub_count(line[1], w);
        Some(s * LINE_BITS + w * 64 + select_in_word(line[2 + w], within as u32) as usize)
    }

    /// Position of the `q`-th clear bit (`q ≥ 1`), or `None` if there are
    /// fewer than `q` clear bits in `[0, len())`.
    #[must_use]
    pub fn select0(&self, q: usize) -> Option<usize> {
        if q == 0 || q > self.count_zeros() {
            return None;
        }
        let zeros_before =
            |s: usize| -> usize { (s * LINE_BITS).min(self.len) - self.ones_before(s) };
        let j = (q - 1) / SELECT_SAMPLE;
        let mut lo = (self.sel_u32(self.sel0_off, j) as usize).min(self.n_lines - 1);
        let mut hi = if j + 1 < self.n_sel0 {
            (self.sel_u32(self.sel0_off, j + 1) as usize + 1).min(self.n_lines)
        } else {
            self.n_lines
        };
        while lo + 1 < hi {
            let mid = usize::midpoint(lo, hi);
            if zeros_before(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let s = lo;
        let line = self.line(s);
        let remaining = q - zeros_before(s);
        // Zeros before data word w+1 of the line = 64·(w+1) − ones there.
        // Phantom zeros past len() only inflate counts beyond the answer's
        // word, because q ≤ count_zeros() places the hit among real bits.
        let mut w = 0usize;
        while w < LINE_WORDS - 1 && 64 * (w + 1) - Self::sub_count(line[1], w + 1) < remaining {
            w += 1;
        }
        let within = remaining - (64 * w - Self::sub_count(line[1], w));
        let pos = s * LINE_BITS + w * 64 + select_in_word(!line[2 + w], within as u32) as usize;
        debug_assert!(pos < self.len);
        Some(pos)
    }

    /// `select1(q)` if `bit`, else `select0(q)`.
    #[must_use]
    pub fn select_bit(&self, bit: bool, q: usize) -> Option<usize> {
        if bit {
            self.select1(q)
        } else {
            self.select0(q)
        }
    }

    /// Footprint in bits (same accounting as [`RsBitVec::size_bits`]).
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.n_lines * 512 + (self.n_sel1 + self.n_sel0) * 32
    }

    /// Packed-`u32` read at `words[off + j/2]`.
    #[inline]
    fn sel_u32(&self, off: usize, j: usize) -> u32 {
        (self.words[off + j / 2] >> (32 * (j % 2))) as u32
    }

    /// Cross-validates every derived structure against the raw data
    /// bits: each line's absolute rank word, the packed 9-bit intra-line
    /// prefix counts, the total ones count, the zero padding past
    /// `len()`, and both select-sample directories.
    ///
    /// [`Self::from_words`] checks only that the *sizes* are mutually
    /// consistent — a corrupted count word parses fine and then silently
    /// mis-answers every `rank`/`select` that touches it. This is the
    /// deep pass `fibc lint` runs over image-resident rank directories.
    ///
    /// # Errors
    /// [`StorageError`] naming the first inconsistency found; corrupt
    /// input never panics.
    pub fn audit(&self) -> Result<(), StorageError> {
        let mut total: u64 = 0;
        let mut next1 = 1usize;
        let mut next0 = 1usize;
        let mut at1 = 0usize;
        let mut at0 = 0usize;
        for s in 0..self.n_lines {
            let line = self.line(s);
            if line[0] != total {
                return Err(StorageError("rank line disagrees with data popcount"));
            }
            let mut subs = 0u64;
            let mut within: u64 = 0;
            for w in 0..LINE_WORDS {
                if w > 0 {
                    subs |= within << (9 * (w - 1));
                }
                let word = line[2 + w];
                let bit_base = s * LINE_BITS + w * 64;
                let tail_ok = if bit_base >= self.len {
                    word == 0
                } else if self.len - bit_base < 64 {
                    word >> (self.len - bit_base) == 0
                } else {
                    true
                };
                if !tail_ok {
                    return Err(StorageError("rank vector tail padding not zero"));
                }
                within += u64::from(word.count_ones());
            }
            if line[1] != subs {
                return Err(StorageError("rank sub-counts disagree with data popcount"));
            }
            total += within;
            // Re-derive the select samples that land in this line, exactly
            // as the builder does, and compare against the stored hints.
            let ones_end = total as usize;
            while next1 <= ones_end {
                if at1 >= self.n_sel1 || self.sel_u32(self.sel1_off, at1) as usize != s {
                    return Err(StorageError("select-1 sample points at the wrong line"));
                }
                at1 += 1;
                next1 += SELECT_SAMPLE;
            }
            let zeros_end = ((s + 1) * LINE_BITS).min(self.len) - ones_end.min(self.len);
            while next0 <= zeros_end {
                if at0 >= self.n_sel0 || self.sel_u32(self.sel0_off, at0) as usize != s {
                    return Err(StorageError("select-0 sample points at the wrong line"));
                }
                at0 += 1;
                next0 += SELECT_SAMPLE;
            }
        }
        if total as usize != self.ones {
            return Err(StorageError("rank directory total disagrees with data"));
        }
        if at1 != self.n_sel1 || at0 != self.n_sel0 {
            return Err(StorageError("select directory has surplus samples"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank1(bits: &[bool], i: usize) -> usize {
        bits[..i].iter().filter(|&&b| b).count()
    }

    fn build(pattern: impl Fn(usize) -> bool, n: usize) -> (Vec<bool>, RsBitVec) {
        let bools: Vec<bool> = (0..n).map(pattern).collect();
        let rs = RsBitVec::new(BitVec::from_bools(&bools));
        (bools, rs)
    }

    #[test]
    fn rank_matches_naive_on_periodic_pattern() {
        let (bools, rs) = build(|i| i % 5 == 0 || i % 7 == 0, 2000);
        for i in (0..=2000).step_by(13) {
            assert_eq!(rs.rank1(i), naive_rank1(&bools, i), "rank1({i})");
            assert_eq!(rs.rank0(i), i - naive_rank1(&bools, i), "rank0({i})");
        }
        assert_eq!(rs.rank1(2000), rs.count_ones());
    }

    #[test]
    fn rank_at_exact_word_and_line_boundaries() {
        let (bools, rs) = build(|i| i % 2 == 0, 1537);
        for i in [0, 63, 64, 65, 383, 384, 385, 767, 768, 1024, 1536, 1537] {
            assert_eq!(rs.rank1(i), naive_rank1(&bools, i), "rank1({i})");
        }
    }

    #[test]
    fn access_rank1_fuses_get_and_rank() {
        let (bools, rs) = build(|i| i % 3 == 0 || i % 11 == 2, 1600);
        for (i, &b) in bools.iter().enumerate() {
            let (bit, rank) = rs.access_rank1(i);
            assert_eq!(bit, b, "bit {i}");
            assert_eq!(rank, naive_rank1(&bools, i), "rank at {i}");
        }
    }

    #[test]
    fn select1_inverts_rank1() {
        let (bools, rs) = build(|i| i % 3 == 1, 1000);
        let mut q = 0;
        for (i, &b) in bools.iter().enumerate() {
            if b {
                q += 1;
                assert_eq!(rs.select1(q), Some(i), "select1({q})");
            }
        }
        assert_eq!(rs.select1(q + 1), None);
        assert_eq!(rs.select1(0), None);
    }

    #[test]
    fn select0_inverts_rank0() {
        let (bools, rs) = build(|i| i % 3 != 1, 700);
        let mut q = 0;
        for (i, &b) in bools.iter().enumerate() {
            if !b {
                q += 1;
                assert_eq!(rs.select0(q), Some(i), "select0({q})");
            }
        }
        assert_eq!(rs.select0(q + 1), None);
    }

    #[test]
    fn select_crosses_many_sample_intervals() {
        // > 100 lines and > 20 select samples on each side, so the
        // sampled directory and the binary search between hints are both
        // exercised away from the trivial first-sample path.
        let (bools, rs) = build(|i| (i / 3) % 2 == 0, 40_000);
        let ones: Vec<usize> = (0..bools.len()).filter(|&i| bools[i]).collect();
        let zeros: Vec<usize> = (0..bools.len()).filter(|&i| !bools[i]).collect();
        for q in (1..=ones.len()).step_by(509) {
            assert_eq!(rs.select1(q), Some(ones[q - 1]), "select1({q})");
        }
        for q in (1..=zeros.len()).step_by(509) {
            assert_eq!(rs.select0(q), Some(zeros[q - 1]), "select0({q})");
        }
    }

    #[test]
    fn select0_ignores_phantom_zeros_past_len() {
        // All ones: no zeros at all, even though the final word has unused
        // zero bits past len.
        let (_, rs) = build(|_| true, 70);
        assert_eq!(rs.select0(1), None);
        assert_eq!(rs.count_zeros(), 0);
    }

    #[test]
    fn empty_vector_is_consistent() {
        let rs = RsBitVec::new(BitVec::new());
        assert_eq!(rs.len(), 0);
        assert_eq!(rs.rank1(0), 0);
        assert_eq!(rs.select1(1), None);
        assert_eq!(rs.select0(1), None);
    }

    #[test]
    fn all_zeros_and_all_ones() {
        let (_, zeros) = build(|_| false, 600);
        assert_eq!(zeros.rank1(600), 0);
        assert_eq!(zeros.select0(600), Some(599));
        let (_, ones) = build(|_| true, 600);
        assert_eq!(ones.rank1(600), 600);
        assert_eq!(ones.select1(600), Some(599));
        assert_eq!(ones.select1(601), None);
    }

    #[test]
    fn rank_bit_and_select_bit_dispatch() {
        let (_, rs) = build(|i| i % 2 == 0, 100);
        assert_eq!(rs.rank_bit(true, 10), 5);
        assert_eq!(rs.rank_bit(false, 10), 5);
        assert_eq!(rs.select_bit(true, 1), Some(0));
        assert_eq!(rs.select_bit(false, 1), Some(1));
    }

    #[test]
    fn directory_overhead_stays_bounded() {
        // In-line directory (2/6 of the data words) + select samples
        // (≤ ~6.3 %): total overhead must stay under 40 % of the raw bits.
        let (_, rs) = build(|i| i % 2 == 0, 1 << 20);
        let raw = 1usize << 20;
        let overhead = rs.size_bits() - raw;
        assert!(
            overhead * 100 <= raw * 40,
            "directory overhead {overhead} bits over {raw} raw bits"
        );
    }

    #[test]
    fn arena_lines_are_cache_aligned() {
        let (_, rs) = build(|i| i % 7 == 0, 10_000);
        let view = rs.view();
        assert_eq!(view.words.as_ptr() as usize % 64, 0, "first line");
        assert!(view.n_lines * BLOCK_WORDS <= view.words.len());
    }

    #[test]
    fn serialized_view_answers_identically_and_borrows() {
        let (bools, rs) = build(|i| i % 5 == 0 || i % 31 == 3, 30_000);
        let mut words = Vec::new();
        rs.write_words(&mut words);
        assert_eq!(words.len() % BLOCK_WORDS, 0);
        let arena = Arena::from_words(&words);
        let (view, consumed) = RsBitVecRef::from_words(arena.words()).unwrap();
        assert_eq!(consumed, words.len());
        // Zero copy: the view's payload lies inside the arena allocation.
        let arena_range = arena.words().as_ptr_range();
        let pr = view.payload_ptr_range();
        assert!(pr.start >= arena_range.start as usize && pr.end <= arena_range.end as usize);
        // Alignment survives the roundtrip.
        assert_eq!(view.words.as_ptr() as usize % 64, 0);
        for i in (0..bools.len()).step_by(37) {
            assert_eq!(view.get(i), bools[i], "get({i})");
            assert_eq!(view.rank1(i), naive_rank1(&bools, i), "rank1({i})");
            assert_eq!(view.access_rank1(i), rs.access_rank1(i));
        }
        for q in (1..=view.count_ones()).step_by(501) {
            assert_eq!(view.select1(q), rs.select1(q), "select1({q})");
        }
        for q in (1..=view.count_zeros()).step_by(501) {
            assert_eq!(view.select0(q), rs.select0(q), "select0({q})");
        }
        assert_eq!(view.size_bits(), rs.size_bits());
    }

    #[test]
    fn from_words_rejects_corrupt_meta() {
        let (_, rs) = build(|i| i % 3 == 0, 5000);
        let mut words = Vec::new();
        rs.write_words(&mut words);
        // Truncation below the payload end fails loudly.
        for cut in [0, 4, 8, 16, words.len() - 8] {
            assert!(RsBitVecRef::from_words(&words[..cut]).is_err(), "cut {cut}");
        }
        // ones > len.
        let mut bad = words.clone();
        bad[1] = bad[0] + 1;
        assert!(RsBitVecRef::from_words(&bad).is_err());
        // Select directory count mismatch.
        let mut bad = words.clone();
        bad[3] += 1;
        assert!(RsBitVecRef::from_words(&bad).is_err());
        // Gigantic line count.
        let mut bad = words;
        bad[2] = u64::MAX;
        assert!(RsBitVecRef::from_words(&bad).is_err());
    }

    #[test]
    fn audit_accepts_honest_and_rejects_corrupt_directories() {
        let (_, rs) = build(|i| i % 7 == 0 || i % 13 == 2, 20_000);
        let mut words = Vec::new();
        rs.write_words(&mut words);
        let (view, _) = RsBitVecRef::from_words(&words).unwrap();
        view.audit().expect("honest directory audits clean");

        // A bumped absolute rank word parses fine but audits dirty.
        let mut bad = words.clone();
        bad[BLOCK_WORDS + 2 * BLOCK_WORDS] += 1; // line 2, word 0
        let (view, _) = RsBitVecRef::from_words(&bad).unwrap();
        assert!(view.audit().unwrap_err().0.contains("rank line"));

        // Corrupt intra-line sub-counts.
        let mut bad = words.clone();
        bad[BLOCK_WORDS + 3 * BLOCK_WORDS + 1] ^= 1 << 9; // line 3, word 1
        let (view, _) = RsBitVecRef::from_words(&bad).unwrap();
        assert!(view.audit().unwrap_err().0.contains("sub-counts"));

        // A select-1 sample pointed at the wrong line.
        let (sel1_off, n_lines) = {
            let (v, _) = RsBitVecRef::from_words(&words).unwrap();
            (v.sel1_off, v.n_lines)
        };
        let mut bad = words.clone();
        bad[BLOCK_WORDS + sel1_off] += 1;
        let (view, _) = RsBitVecRef::from_words(&bad).unwrap();
        assert!(view.audit().unwrap_err().0.contains("select-1"));

        // Nonzero bits past len.
        let mut bad = words;
        let last_line_word = BLOCK_WORDS + (n_lines - 1) * BLOCK_WORDS + 2 + LINE_WORDS - 1;
        bad[last_line_word] |= 1 << 63; // 20_000 % 384 != 0, so this is tail
        let (view, _) = RsBitVecRef::from_words(&bad).unwrap();
        assert!(view.audit().unwrap_err().0.contains("tail"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rank_past_len_panics() {
        let (_, rs) = build(|_| true, 70);
        let _ = rs.rank1(71);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn access_rank1_at_len_panics() {
        let (_, rs) = build(|_| true, 70);
        let _ = rs.access_rank1(70);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_past_len_panics() {
        let (_, rs) = build(|_| true, 70);
        let _ = rs.get(70);
    }
}
