//! Bit vector with constant-time rank and logarithmic select.

use crate::bits::BitVec;

/// Superblock size in bits. One `u64` cumulative count plus eight `u16`
/// intra-superblock offsets are stored per superblock.
const SUPER_BITS: usize = 512;
/// Words per superblock.
const SUPER_WORDS: usize = SUPER_BITS / 64;

/// A static bit vector with a two-level rank directory.
///
/// `rank0`/`rank1` run in O(1): one superblock read, one intra-superblock
/// read, one masked popcount. `select0`/`select1` binary-search the
/// directory and then scan at most one superblock, i.e. O(log n) with a tiny
/// constant. The directory adds ≈ 37.5 % on top of the raw bits — this is
/// the *plain* index; use [`crate::RrrVec`] when compression matters.
///
/// The structure is immutable after construction, which is exactly what the
/// static FIB encodings need.
#[derive(Clone, Debug)]
pub struct RsBitVec {
    bits: BitVec,
    /// Ones strictly before each superblock.
    sup: Vec<u64>,
    /// Ones within the superblock strictly before each word.
    intra: Vec<u16>,
    ones: usize,
}

impl RsBitVec {
    /// Builds the rank directory over `bits`.
    #[must_use]
    pub fn new(bits: BitVec) -> Self {
        let words = bits.words();
        let n_super = words.len().div_ceil(SUPER_WORDS).max(1);
        let mut sup = Vec::with_capacity(n_super + 1);
        let mut intra = vec![0u16; n_super * SUPER_WORDS];
        let mut total: u64 = 0;
        for s in 0..n_super {
            sup.push(total);
            let mut within: u16 = 0;
            for w in 0..SUPER_WORDS {
                let wi = s * SUPER_WORDS + w;
                intra[s * SUPER_WORDS + w] = within;
                if wi < words.len() {
                    within += words[wi].count_ones() as u16;
                }
            }
            total += u64::from(within);
        }
        sup.push(total);
        Self {
            bits,
            sup,
            intra,
            ones: total as usize,
        }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Total number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Total number of clear bits.
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len() - self.ones
    }

    /// Reads bit `i`.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// The underlying bit vector.
    #[must_use]
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Number of set bits in `[0, i)`.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        assert!(
            i <= self.len(),
            "rank index {i} out of bounds (len {})",
            self.len()
        );
        let word = i / 64;
        if word >= self.intra.len() {
            // Only possible when i == len() and len() fills the directory
            // exactly; the answer is the total popcount.
            return self.ones;
        }
        let s = word / SUPER_WORDS;
        let mut r = self.sup[s] as usize + usize::from(self.intra[word]);
        let bit = i % 64;
        if bit > 0 {
            // bit > 0 implies word*64 < i <= len, so `word` indexes a real word.
            let w = self.bits.words()[word];
            r += (w & ((1u64 << bit) - 1)).count_ones() as usize;
        }
        r
    }

    /// Number of clear bits in `[0, i)`.
    #[must_use]
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// `rank1(i)` if `bit`, else `rank0(i)`.
    #[must_use]
    #[inline]
    pub fn rank_bit(&self, bit: bool, i: usize) -> usize {
        if bit {
            self.rank1(i)
        } else {
            self.rank0(i)
        }
    }

    /// Position of the `q`-th set bit (`q ≥ 1`), or `None` if there are
    /// fewer than `q` set bits.
    #[must_use]
    pub fn select1(&self, q: usize) -> Option<usize> {
        if q == 0 || q > self.ones {
            return None;
        }
        let target = q as u64;
        // Largest superblock s with sup[s] < target.
        let mut lo = 0usize;
        let mut hi = self.sup.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.sup[mid] < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let s = lo;
        let mut remaining = (target - self.sup[s]) as usize;
        let words = self.bits.words();
        let start = s * SUPER_WORDS;
        for (wi, &word) in words.iter().enumerate().skip(start).take(SUPER_WORDS) {
            let ones_here = word.count_ones() as usize;
            if remaining <= ones_here {
                return Some(wi * 64 + select_in_word(word, remaining as u32) as usize);
            }
            remaining -= ones_here;
        }
        unreachable!("select1: rank directory inconsistent");
    }

    /// Position of the `q`-th clear bit (`q ≥ 1`), or `None` if there are
    /// fewer than `q` clear bits in `[0, len())`.
    #[must_use]
    pub fn select0(&self, q: usize) -> Option<usize> {
        if q == 0 || q > self.count_zeros() {
            return None;
        }
        let target = q as u64;
        let zeros_before = |s: usize| -> u64 {
            let bits_before = ((s * SUPER_BITS).min(self.len())) as u64;
            bits_before - self.sup[s]
        };
        let mut lo = 0usize;
        let mut hi = self.sup.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if zeros_before(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let s = lo;
        let mut remaining = (target - zeros_before(s)) as usize;
        let words = self.bits.words();
        let start = s * SUPER_WORDS;
        for (wi, &word) in words.iter().enumerate().skip(start).take(SUPER_WORDS) {
            let zeros_here = (!word).count_ones() as usize;
            if remaining <= zeros_here {
                let pos = wi * 64 + select_in_word(!word, remaining as u32) as usize;
                // q ≤ count_zeros() guarantees pos < len: phantom zeros in the
                // final partial word sit above every real position.
                debug_assert!(pos < self.len());
                return Some(pos);
            }
            remaining -= zeros_here;
        }
        unreachable!("select0: rank directory inconsistent");
    }

    /// `select1(q)` if `bit`, else `select0(q)`.
    #[must_use]
    pub fn select_bit(&self, bit: bool, q: usize) -> Option<usize> {
        if bit {
            self.select1(q)
        } else {
            self.select0(q)
        }
    }

    /// Footprint in bits: raw bits plus the rank directory.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.bits.size_bits() + self.sup.len() * 64 + self.intra.len() * 16
    }
}

/// Position (0-based) of the `q`-th set bit in `word`, `q ≥ 1 ≤ popcount`.
#[inline]
fn select_in_word(word: u64, q: u32) -> u32 {
    debug_assert!(q >= 1 && q <= word.count_ones());
    let mut remaining = q;
    let mut w = word;
    let mut base = 0u32;
    // Byte-skipping scan: at most 8 iterations, then at most 8 bit tests.
    loop {
        let byte_ones = (w & 0xFF).count_ones();
        if remaining <= byte_ones {
            let mut b = w & 0xFF;
            for _ in 1..remaining {
                b &= b - 1; // clear lowest set bit
            }
            return base + b.trailing_zeros();
        }
        remaining -= byte_ones;
        w >>= 8;
        base += 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank1(bits: &[bool], i: usize) -> usize {
        bits[..i].iter().filter(|&&b| b).count()
    }

    fn build(pattern: impl Fn(usize) -> bool, n: usize) -> (Vec<bool>, RsBitVec) {
        let bools: Vec<bool> = (0..n).map(pattern).collect();
        let rs = RsBitVec::new(BitVec::from_bools(&bools));
        (bools, rs)
    }

    #[test]
    fn rank_matches_naive_on_periodic_pattern() {
        let (bools, rs) = build(|i| i % 5 == 0 || i % 7 == 0, 2000);
        for i in (0..=2000).step_by(13) {
            assert_eq!(rs.rank1(i), naive_rank1(&bools, i), "rank1({i})");
            assert_eq!(rs.rank0(i), i - naive_rank1(&bools, i), "rank0({i})");
        }
        assert_eq!(rs.rank1(2000), rs.count_ones());
    }

    #[test]
    fn rank_at_exact_word_and_superblock_boundaries() {
        let (bools, rs) = build(|i| i % 2 == 0, 1537);
        for i in [0, 63, 64, 65, 511, 512, 513, 1024, 1536, 1537] {
            assert_eq!(rs.rank1(i), naive_rank1(&bools, i), "rank1({i})");
        }
    }

    #[test]
    fn select1_inverts_rank1() {
        let (bools, rs) = build(|i| i % 3 == 1, 1000);
        let mut q = 0;
        for (i, &b) in bools.iter().enumerate() {
            if b {
                q += 1;
                assert_eq!(rs.select1(q), Some(i), "select1({q})");
            }
        }
        assert_eq!(rs.select1(q + 1), None);
        assert_eq!(rs.select1(0), None);
    }

    #[test]
    fn select0_inverts_rank0() {
        let (bools, rs) = build(|i| i % 3 != 1, 700);
        let mut q = 0;
        for (i, &b) in bools.iter().enumerate() {
            if !b {
                q += 1;
                assert_eq!(rs.select0(q), Some(i), "select0({q})");
            }
        }
        assert_eq!(rs.select0(q + 1), None);
    }

    #[test]
    fn select0_ignores_phantom_zeros_past_len() {
        // All ones: no zeros at all, even though the final word has unused
        // zero bits past len.
        let (_, rs) = build(|_| true, 70);
        assert_eq!(rs.select0(1), None);
        assert_eq!(rs.count_zeros(), 0);
    }

    #[test]
    fn empty_vector_is_consistent() {
        let rs = RsBitVec::new(BitVec::new());
        assert_eq!(rs.len(), 0);
        assert_eq!(rs.rank1(0), 0);
        assert_eq!(rs.select1(1), None);
        assert_eq!(rs.select0(1), None);
    }

    #[test]
    fn all_zeros_and_all_ones() {
        let (_, zeros) = build(|_| false, 600);
        assert_eq!(zeros.rank1(600), 0);
        assert_eq!(zeros.select0(600), Some(599));
        let (_, ones) = build(|_| true, 600);
        assert_eq!(ones.rank1(600), 600);
        assert_eq!(ones.select1(600), Some(599));
        assert_eq!(ones.select1(601), None);
    }

    #[test]
    fn select_in_word_all_positions() {
        let w: u64 = 0b1010_1101;
        assert_eq!(select_in_word(w, 1), 0);
        assert_eq!(select_in_word(w, 2), 2);
        assert_eq!(select_in_word(w, 3), 3);
        assert_eq!(select_in_word(w, 4), 5);
        assert_eq!(select_in_word(w, 5), 7);
        assert_eq!(select_in_word(u64::MAX, 64), 63);
        assert_eq!(select_in_word(1u64 << 63, 1), 63);
    }

    #[test]
    fn rank_bit_and_select_bit_dispatch() {
        let (_, rs) = build(|i| i % 2 == 0, 100);
        assert_eq!(rs.rank_bit(true, 10), 5);
        assert_eq!(rs.rank_bit(false, 10), 5);
        assert_eq!(rs.select_bit(true, 1), Some(0));
        assert_eq!(rs.select_bit(false, 1), Some(1));
    }
}
