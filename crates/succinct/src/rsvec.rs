//! Bit vector with single-cache-line rank and sampled constant-time select.

use crate::bits::BitVec;
use crate::broadword::select_in_word;

/// Data bits per directory line.
const LINE_BITS: usize = 384;
/// Data words per directory line.
const LINE_WORDS: usize = LINE_BITS / 64;
/// One select sample (a line hint) is kept per this many ones/zeros.
const SELECT_SAMPLE: usize = 512;

/// One 64-byte unit of the interleaved layout, forced onto a cache-line
/// boundary so every rank query touches exactly one line.
///
/// * word 0 — ones strictly before this line's data bits (absolute),
/// * word 1 — five 9-bit intra-line prefix counts (ones before data words
///   1..=5, packed LSB-first; bits 45–63 stay zero),
/// * words 2–7 — the 384 data bits.
#[derive(Clone, Copy, Debug)]
#[repr(align(64))]
struct Line([u64; 8]);

/// A static bit vector whose bits and rank directory are interleaved into
/// aligned 64-byte lines (in the cs-poppy / rank9 lineage).
///
/// Each line carries its absolute rank, its packed per-word sub-counts
/// and six data words, so `rank1`, `get` and the fused
/// [`RsBitVec::access_rank1`] cost **one** cache-line touch — versus the
/// previous two-array directory, whose superblock entry, per-word `u16`
/// and bits word lived on three distinct lines.
///
/// `select1`/`select0` first consult a position hint sampled every 512
/// ones (zeros), then binary-search only the handful of lines between two
/// hints, and finish with a branchless in-word select
/// ([`select_in_word`]) — O(1) for any density that is not pathologically
/// clustered, O(log n) worst case.
///
/// Space: the in-line directory costs 2 words per 6 data words (33.3 %)
/// and the select samples at most ≈6.3 % more (one `u32` per 512 bits,
/// ones and zeros combined) — marginally above the old layout's 37.5 %,
/// traded for the 3× fewer lines per query. This is the *plain* index;
/// use [`crate::RrrVec`] when compression matters.
///
/// The structure is immutable after construction, which is exactly what
/// the static FIB encodings need.
#[derive(Clone, Debug)]
pub struct RsBitVec {
    lines: Vec<Line>,
    /// `sel1[j]` = line containing the `(512·j + 1)`-th one.
    sel1: Vec<u32>,
    /// `sel0[j]` = line containing the `(512·j + 1)`-th zero.
    sel0: Vec<u32>,
    len: usize,
    ones: usize,
}

#[cold]
#[inline(never)]
fn index_oob(i: usize, len: usize) -> ! {
    panic!("bit index {i} out of bounds (len {len})");
}

impl RsBitVec {
    /// Builds the interleaved lines and select directories over `bits`.
    #[must_use]
    pub fn new(bits: BitVec) -> Self {
        let words = bits.words();
        let len = bits.len();
        let n_lines = words.len().div_ceil(LINE_WORDS).max(1);
        let mut lines = Vec::with_capacity(n_lines);
        let mut total: u64 = 0;
        for s in 0..n_lines {
            let mut line = [0u64; 8];
            line[0] = total;
            let mut subs = 0u64;
            let mut within: u64 = 0;
            for w in 0..LINE_WORDS {
                if w > 0 {
                    subs |= within << (9 * (w - 1));
                }
                let wi = s * LINE_WORDS + w;
                if wi < words.len() {
                    line[2 + w] = words[wi];
                    within += u64::from(words[wi].count_ones());
                }
            }
            line[1] = subs;
            lines.push(Line(line));
            total += within;
        }
        let ones = total as usize;

        // Select samples: the line holding every 512-th one/zero.
        let ones_before = |s: usize| -> usize {
            if s >= n_lines {
                ones
            } else {
                lines[s].0[0] as usize
            }
        };
        let mut sel1 = Vec::with_capacity(ones / SELECT_SAMPLE + 1);
        let mut sel0 = Vec::with_capacity((len - ones) / SELECT_SAMPLE + 1);
        let mut next1 = 1usize;
        let mut next0 = 1usize;
        for s in 0..n_lines {
            let ones_end = ones_before(s + 1);
            while next1 <= ones_end {
                sel1.push(s as u32);
                next1 += SELECT_SAMPLE;
            }
            let zeros_end = ((s + 1) * LINE_BITS).min(len) - ones_end;
            while next0 <= zeros_end {
                sel0.push(s as u32);
                next0 += SELECT_SAMPLE;
            }
        }
        Self {
            lines,
            sel1,
            sel0,
            len,
            ones,
        }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Total number of clear bits.
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            index_oob(i, self.len);
        }
        let line = &self.lines[i / LINE_BITS].0;
        (line[2 + (i % LINE_BITS) / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of lines.
    #[inline]
    fn n_lines(&self) -> usize {
        self.lines.len()
    }

    /// Ones strictly before line `s`; `s == n_lines()` reads the total.
    #[inline]
    fn ones_before(&self, s: usize) -> usize {
        if s >= self.n_lines() {
            self.ones
        } else {
            self.lines[s].0[0] as usize
        }
    }

    /// Intra-line prefix count: ones before data word `w` (0–5) given the
    /// packed counts `subs`. Branchless: word 0 reads the always-zero top
    /// bits.
    #[inline]
    fn sub_count(subs: u64, w: usize) -> usize {
        ((subs >> ((w.wrapping_sub(1) & 7) * 9)) & 0x1FF) as usize
    }

    /// Number of set bits in `[0, i)`.
    ///
    /// One aligned cache-line touch: absolute count, packed sub-count and
    /// the data word all come from the same line, finished by a masked
    /// popcount.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        if i > self.len {
            index_oob(i, self.len);
        }
        let s = i / LINE_BITS;
        if s >= self.lines.len() {
            // Only reachable when i == len() and len() fills the lines
            // exactly.
            return self.ones;
        }
        let line = &self.lines[s].0;
        let w = (i % LINE_BITS) / 64;
        let r = line[0] as usize + Self::sub_count(line[1], w);
        // `!(MAX << bit)` keeps the low `bit` bits; bit == 0 masks to 0.
        let masked = line[2 + w] & !(u64::MAX << (i % 64));
        r + masked.count_ones() as usize
    }

    /// Number of clear bits in `[0, i)`.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// `rank1(i)` if `bit`, else `rank0(i)`.
    #[must_use]
    #[inline]
    pub fn rank_bit(&self, bit: bool, i: usize) -> usize {
        if bit {
            self.rank1(i)
        } else {
            self.rank0(i)
        }
    }

    /// Fused `(get(i), rank1(i))` from the same single cache-line touch:
    /// callers that need both (wavelet-tree descent, the XBW-b lookup
    /// loop) pay one memory dependence chain instead of two.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    #[inline]
    pub fn access_rank1(&self, i: usize) -> (bool, usize) {
        if i >= self.len {
            index_oob(i, self.len);
        }
        let line = &self.lines[i / LINE_BITS].0;
        let w = (i % LINE_BITS) / 64;
        let word = line[2 + w];
        let bit = i % 64;
        let rank = line[0] as usize
            + Self::sub_count(line[1], w)
            + (word & !(u64::MAX << bit)).count_ones() as usize;
        ((word >> bit) & 1 == 1, rank)
    }

    /// Position of the `q`-th set bit (`q ≥ 1`), or `None` if there are
    /// fewer than `q` set bits.
    ///
    /// The sampled directory narrows the search to the lines between two
    /// consecutive hints before binary-searching.
    #[must_use]
    pub fn select1(&self, q: usize) -> Option<usize> {
        if q == 0 || q > self.ones {
            return None;
        }
        // Hint: the line of the nearest sampled one at or below q.
        let j = (q - 1) / SELECT_SAMPLE;
        let mut lo = self.sel1[j] as usize;
        let mut hi = self
            .sel1
            .get(j + 1)
            .map_or(self.n_lines(), |&s| s as usize + 1);
        // Largest line s with ones_before(s) < q.
        while lo + 1 < hi {
            let mid = usize::midpoint(lo, hi);
            if self.ones_before(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let s = lo;
        let line = &self.lines[s].0;
        let remaining = q - line[0] as usize;
        // Walk the packed 9-bit prefix counts to the word holding the hit.
        let mut w = 0usize;
        while w < LINE_WORDS - 1 && Self::sub_count(line[1], w + 1) < remaining {
            w += 1;
        }
        let within = remaining - Self::sub_count(line[1], w);
        Some(s * LINE_BITS + w * 64 + select_in_word(line[2 + w], within as u32) as usize)
    }

    /// Position of the `q`-th clear bit (`q ≥ 1`), or `None` if there are
    /// fewer than `q` clear bits in `[0, len())`.
    #[must_use]
    pub fn select0(&self, q: usize) -> Option<usize> {
        if q == 0 || q > self.count_zeros() {
            return None;
        }
        let zeros_before =
            |s: usize| -> usize { (s * LINE_BITS).min(self.len) - self.ones_before(s) };
        let j = (q - 1) / SELECT_SAMPLE;
        let mut lo = self.sel0[j] as usize;
        let mut hi = self
            .sel0
            .get(j + 1)
            .map_or(self.n_lines(), |&s| s as usize + 1);
        while lo + 1 < hi {
            let mid = usize::midpoint(lo, hi);
            if zeros_before(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let s = lo;
        let line = &self.lines[s].0;
        let remaining = q - zeros_before(s);
        // Zeros before data word w+1 of the line = 64·(w+1) − ones there.
        // Phantom zeros past len() only inflate counts beyond the answer's
        // word, because q ≤ count_zeros() places the hit among real bits.
        let mut w = 0usize;
        while w < LINE_WORDS - 1 && 64 * (w + 1) - Self::sub_count(line[1], w + 1) < remaining {
            w += 1;
        }
        let within = remaining - (64 * w - Self::sub_count(line[1], w));
        let pos = s * LINE_BITS + w * 64 + select_in_word(!line[2 + w], within as u32) as usize;
        debug_assert!(pos < self.len);
        Some(pos)
    }

    /// `select1(q)` if `bit`, else `select0(q)`.
    #[must_use]
    pub fn select_bit(&self, bit: bool, q: usize) -> Option<usize> {
        if bit {
            self.select1(q)
        } else {
            self.select0(q)
        }
    }

    /// Footprint in bits: the interleaved lines (data + in-line
    /// directory) plus the select samples — exactly the fields a
    /// serialized form would carry, so Table 2's size column tracks the
    /// real structure.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.lines.len() * 512 + (self.sel1.len() + self.sel0.len()) * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank1(bits: &[bool], i: usize) -> usize {
        bits[..i].iter().filter(|&&b| b).count()
    }

    fn build(pattern: impl Fn(usize) -> bool, n: usize) -> (Vec<bool>, RsBitVec) {
        let bools: Vec<bool> = (0..n).map(pattern).collect();
        let rs = RsBitVec::new(BitVec::from_bools(&bools));
        (bools, rs)
    }

    #[test]
    fn rank_matches_naive_on_periodic_pattern() {
        let (bools, rs) = build(|i| i % 5 == 0 || i % 7 == 0, 2000);
        for i in (0..=2000).step_by(13) {
            assert_eq!(rs.rank1(i), naive_rank1(&bools, i), "rank1({i})");
            assert_eq!(rs.rank0(i), i - naive_rank1(&bools, i), "rank0({i})");
        }
        assert_eq!(rs.rank1(2000), rs.count_ones());
    }

    #[test]
    fn rank_at_exact_word_and_line_boundaries() {
        let (bools, rs) = build(|i| i % 2 == 0, 1537);
        for i in [0, 63, 64, 65, 383, 384, 385, 767, 768, 1024, 1536, 1537] {
            assert_eq!(rs.rank1(i), naive_rank1(&bools, i), "rank1({i})");
        }
    }

    #[test]
    fn access_rank1_fuses_get_and_rank() {
        let (bools, rs) = build(|i| i % 3 == 0 || i % 11 == 2, 1600);
        for (i, &b) in bools.iter().enumerate() {
            let (bit, rank) = rs.access_rank1(i);
            assert_eq!(bit, b, "bit {i}");
            assert_eq!(rank, naive_rank1(&bools, i), "rank at {i}");
        }
    }

    #[test]
    fn select1_inverts_rank1() {
        let (bools, rs) = build(|i| i % 3 == 1, 1000);
        let mut q = 0;
        for (i, &b) in bools.iter().enumerate() {
            if b {
                q += 1;
                assert_eq!(rs.select1(q), Some(i), "select1({q})");
            }
        }
        assert_eq!(rs.select1(q + 1), None);
        assert_eq!(rs.select1(0), None);
    }

    #[test]
    fn select0_inverts_rank0() {
        let (bools, rs) = build(|i| i % 3 != 1, 700);
        let mut q = 0;
        for (i, &b) in bools.iter().enumerate() {
            if !b {
                q += 1;
                assert_eq!(rs.select0(q), Some(i), "select0({q})");
            }
        }
        assert_eq!(rs.select0(q + 1), None);
    }

    #[test]
    fn select_crosses_many_sample_intervals() {
        // > 100 lines and > 20 select samples on each side, so the
        // sampled directory and the binary search between hints are both
        // exercised away from the trivial first-sample path.
        let (bools, rs) = build(|i| (i / 3) % 2 == 0, 40_000);
        let ones: Vec<usize> = (0..bools.len()).filter(|&i| bools[i]).collect();
        let zeros: Vec<usize> = (0..bools.len()).filter(|&i| !bools[i]).collect();
        for q in (1..=ones.len()).step_by(509) {
            assert_eq!(rs.select1(q), Some(ones[q - 1]), "select1({q})");
        }
        for q in (1..=zeros.len()).step_by(509) {
            assert_eq!(rs.select0(q), Some(zeros[q - 1]), "select0({q})");
        }
    }

    #[test]
    fn select0_ignores_phantom_zeros_past_len() {
        // All ones: no zeros at all, even though the final word has unused
        // zero bits past len.
        let (_, rs) = build(|_| true, 70);
        assert_eq!(rs.select0(1), None);
        assert_eq!(rs.count_zeros(), 0);
    }

    #[test]
    fn empty_vector_is_consistent() {
        let rs = RsBitVec::new(BitVec::new());
        assert_eq!(rs.len(), 0);
        assert_eq!(rs.rank1(0), 0);
        assert_eq!(rs.select1(1), None);
        assert_eq!(rs.select0(1), None);
    }

    #[test]
    fn all_zeros_and_all_ones() {
        let (_, zeros) = build(|_| false, 600);
        assert_eq!(zeros.rank1(600), 0);
        assert_eq!(zeros.select0(600), Some(599));
        let (_, ones) = build(|_| true, 600);
        assert_eq!(ones.rank1(600), 600);
        assert_eq!(ones.select1(600), Some(599));
        assert_eq!(ones.select1(601), None);
    }

    #[test]
    fn rank_bit_and_select_bit_dispatch() {
        let (_, rs) = build(|i| i % 2 == 0, 100);
        assert_eq!(rs.rank_bit(true, 10), 5);
        assert_eq!(rs.rank_bit(false, 10), 5);
        assert_eq!(rs.select_bit(true, 1), Some(0));
        assert_eq!(rs.select_bit(false, 1), Some(1));
    }

    #[test]
    fn directory_overhead_stays_bounded() {
        // In-line directory (2/6 of the data words) + select samples
        // (≤ ~6.3 %): total overhead must stay under 40 % of the raw bits.
        let (_, rs) = build(|i| i % 2 == 0, 1 << 20);
        let raw = 1usize << 20;
        let overhead = rs.size_bits() - raw;
        assert!(
            overhead * 100 <= raw * 40,
            "directory overhead {overhead} bits over {raw} raw bits"
        );
    }

    #[test]
    fn lines_are_cache_aligned() {
        assert_eq!(std::mem::size_of::<Line>(), 64);
        assert_eq!(std::mem::align_of::<Line>(), 64);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rank_past_len_panics() {
        let (_, rs) = build(|_| true, 70);
        let _ = rs.rank1(71);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn access_rank1_at_len_panics() {
        let (_, rs) = build(|_| true, 70);
        let _ = rs.access_rank1(70);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_past_len_panics() {
        let (_, rs) = build(|_| true, 70);
        let _ = rs.get(70);
    }
}
