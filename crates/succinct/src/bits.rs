//! Plain bit vector backed by `u64` words.

/// A growable bit vector with bit-granular and word-granular access.
///
/// Bit `i` lives in word `i / 64` at bit position `i % 64` (LSB-first).
/// Unused high bits of the final word are kept at zero, which the rank and
/// select structures built on top rely on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit vector with room for `bits` bits.
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a bit vector of `len` zero bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds from a slice of booleans (index 0 first).
    #[must_use]
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut bv = Self::with_capacity(bools.len());
        for &b in bools {
            bv.push(b);
        }
        bv
    }

    /// Number of bits stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics in debug builds if `i >= len()`.
    /// Release builds elide the check on the packet path.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Appends the `width` low bits of `value`, LSB first.
    ///
    /// # Panics
    /// Panics if `width > 64` or if `value` has bits above `width`.
    pub fn push_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} > 64");
        if width < 64 {
            assert!(
                value >> width == 0,
                "value {value:#x} wider than {width} bits"
            );
        }
        if width == 0 {
            return;
        }
        let bit = self.len % 64;
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= value << bit;
        let written = 64 - bit;
        if (width as usize) > written {
            self.words.push(value >> written);
        }
        self.len += width as usize;
    }

    /// Reads `width` bits starting at bit `pos`, returned LSB-first.
    ///
    /// # Panics
    /// Panics if `width > 64` or the range exceeds `len()`.
    #[must_use]
    #[inline]
    pub fn get_bits(&self, pos: usize, width: u32) -> u64 {
        assert!(width <= 64, "width {width} > 64");
        if width == 0 {
            return 0;
        }
        assert!(
            pos + width as usize <= self.len,
            "bit range {pos}..{} out of bounds (len {})",
            pos + width as usize,
            self.len
        );
        let bit = pos % 64;
        let word = pos / 64;
        let lo = self.words[word] >> bit;
        let have = 64 - bit;
        let raw = if (width as usize) > have {
            lo | (self.words[word + 1] << have)
        } else {
            lo
        };
        if width == 64 {
            raw
        } else {
            raw & ((1u64 << width) - 1)
        }
    }

    /// Overwrites `width` bits starting at `pos` with the low bits of `value`.
    ///
    /// # Panics
    /// Panics if `width > 64`, the range exceeds `len()`, or `value` has
    /// bits above `width`.
    pub fn set_bits(&mut self, pos: usize, value: u64, width: u32) {
        assert!(width <= 64, "width {width} > 64");
        if width < 64 {
            assert!(
                value >> width == 0,
                "value {value:#x} wider than {width} bits"
            );
        }
        if width == 0 {
            return;
        }
        assert!(pos + width as usize <= self.len, "bit range out of bounds");
        let bit = pos % 64;
        let word = pos / 64;
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        self.words[word] &= !(mask << bit);
        self.words[word] |= value << bit;
        let have = 64 - bit;
        if (width as usize) > have {
            let spill = width as usize - have;
            let spill_mask = (1u64 << spill) - 1;
            self.words[word + 1] &= !spill_mask;
            self.words[word + 1] |= value >> have;
        }
    }

    /// Total number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words. The final word has its unused high bits zeroed.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Footprint of the payload in bits (words, rounded up; excludes the
    /// `len` field).
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.words.len() * 64
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut bv = Self::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let pattern = [true, false, true, true, false, false, true];
        let bv = BitVec::from_bools(&pattern);
        assert_eq!(bv.len(), 7);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bv.get(i), b, "bit {i}");
        }
        assert_eq!(bv.count_ones(), 4);
    }

    #[test]
    fn push_across_word_boundary() {
        let mut bv = BitVec::new();
        for i in 0..200 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 200);
        for i in 0..200 {
            assert_eq!(bv.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn set_flips_bits() {
        let mut bv = BitVec::zeros(130);
        bv.set(0, true);
        bv.set(64, true);
        bv.set(129, true);
        assert_eq!(bv.count_ones(), 3);
        bv.set(64, false);
        assert_eq!(bv.count_ones(), 2);
        assert!(!bv.get(64));
        assert!(bv.get(129));
    }

    #[test]
    fn push_bits_and_get_bits_roundtrip() {
        let mut bv = BitVec::new();
        let values: [(u64, u32); 6] = [
            (0b101, 3),
            (0xFFFF, 16),
            (0, 1),
            (0x1234_5678_9ABC_DEF0, 64),
            (1, 1),
            (0x7F, 7),
        ];
        let mut positions = Vec::new();
        for &(v, w) in &values {
            positions.push(bv.len());
            bv.push_bits(v, w);
        }
        for (&(v, w), &pos) in values.iter().zip(&positions) {
            assert_eq!(bv.get_bits(pos, w), v, "field at {pos} width {w}");
        }
    }

    #[test]
    fn get_bits_straddles_word_boundary() {
        let mut bv = BitVec::new();
        bv.push_bits(0, 60);
        bv.push_bits(0b1011_0111, 8); // bits 60..68
        assert_eq!(bv.get_bits(60, 8), 0b1011_0111);
        assert_eq!(bv.get_bits(62, 4), 0b1101);
    }

    #[test]
    fn set_bits_straddles_word_boundary() {
        let mut bv = BitVec::zeros(256);
        bv.set_bits(60, 0xABCD, 16);
        assert_eq!(bv.get_bits(60, 16), 0xABCD);
        bv.set_bits(60, 0x1234, 16);
        assert_eq!(bv.get_bits(60, 16), 0x1234);
        // Neighbours untouched.
        assert_eq!(bv.get_bits(0, 60), 0);
        assert_eq!(bv.get_bits(76, 64), 0);
    }

    #[test]
    fn zero_width_ops_are_noops() {
        let mut bv = BitVec::zeros(10);
        bv.push_bits(0, 0);
        assert_eq!(bv.len(), 10);
        assert_eq!(bv.get_bits(5, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)]
    fn get_out_of_bounds_panics() {
        let bv = BitVec::zeros(8);
        let _ = bv.get(8);
    }

    #[test]
    fn from_iterator_collects() {
        let bv: BitVec = (0..100).map(|i| i % 2 == 0).collect();
        assert_eq!(bv.len(), 100);
        assert_eq!(bv.count_ones(), 50);
    }
}
