//! Pointer-based wavelet trees, balanced or Huffman-shaped, with plain or
//! RRR-compressed node bit vectors.
//!
//! For FIB images the tree serializes into one aligned word run
//! ([`WaveletTree::write_words`]): a meta block, a fixed-width node table,
//! and each node's bit vector as a nested storage section. The zero-copy
//! [`WaveletTreeRef`] parses that run and answers `access` — the only
//! primitive the XBW-b lookup walk needs — by descending the node table
//! and materializing each node's [`crate::RsBitVecRef`]/[`crate::RrrVecRef`]
//! on the fly from borrowed words (no allocation, no copies).

use crate::bits::BitVec;
use crate::huffman::{self, Code};
use crate::rrr::{RrrVec, RrrVecRef};
use crate::rsvec::{RsBitVec, RsBitVecRef};
use crate::storage::{self, meta_usize, pad_to_block, StorageError, BLOCK_WORDS};

/// Shape of the code tree a [`WaveletTree`] is built around.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaveletShape {
    /// Fixed-width codes: `n·⌈lg σ⌉` bits, uniform O(lg σ) query depth.
    Balanced,
    /// Canonical Huffman codes: `n(H0+1) + o(n)` bits, O(avg code length)
    /// expected query depth. This is the entropy-compressed mode the paper's
    /// Lemma 3 relies on for the label string `S_α`.
    Huffman,
}

/// Storage of each node's bit vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaveletBacking {
    /// Plain bits + rank directory: fastest, ~37 % overhead.
    Plain,
    /// RRR-compressed: removes Huffman's one-bit-per-symbol floor, taking
    /// the whole tree to `n·H0 + o(n)` bits (Ferragina–Manzini–Mäkinen–
    /// Navarro), at the price of slower node ranks.
    Rrr,
}

#[derive(Clone, Debug)]
enum NodeBits {
    Plain(RsBitVec),
    Rrr(RrrVec),
}

impl NodeBits {
    fn build(bits: BitVec, backing: WaveletBacking) -> Self {
        match backing {
            WaveletBacking::Plain => Self::Plain(RsBitVec::new(bits)),
            WaveletBacking::Rrr => Self::Rrr(RrrVec::new(&bits)),
        }
    }

    /// Fused `(bit, rank_bit(bit, i))` from a single directory probe (or a
    /// single RRR block decode) — the descent step of `access` needs
    /// exactly this pair.
    #[inline]
    fn access_rank(&self, i: usize) -> (bool, usize) {
        let (bit, r1) = match self {
            Self::Plain(v) => v.access_rank1(i),
            Self::Rrr(v) => v.access_rank1(i),
        };
        (bit, if bit { r1 } else { i - r1 })
    }

    #[inline]
    fn rank_bit(&self, bit: bool, i: usize) -> usize {
        match self {
            Self::Plain(v) => v.rank_bit(bit, i),
            Self::Rrr(v) => {
                if bit {
                    v.rank1(i)
                } else {
                    v.rank0(i)
                }
            }
        }
    }

    #[inline]
    fn select_bit(&self, bit: bool, q: usize) -> Option<usize> {
        match self {
            Self::Plain(v) => v.select_bit(bit, q),
            Self::Rrr(v) => {
                if bit {
                    v.select1(q)
                } else {
                    v.select0(q)
                }
            }
        }
    }

    fn size_bits(&self) -> usize {
        match self {
            Self::Plain(v) => v.size_bits(),
            Self::Rrr(v) => v.size_bits(),
        }
    }
}

/// Reference to a wavelet-tree child: an internal node, a leaf holding one
/// symbol, or absent (an unused balanced-code branch).
#[derive(Clone, Copy, Debug)]
enum ChildRef {
    Node(u32),
    Leaf(u64),
    None,
}

#[derive(Clone, Debug)]
struct WtNode {
    bits: NodeBits,
    left: ChildRef,
    right: ChildRef,
}

/// A static sequence over a small alphabet supporting `access`, symbol
/// `rank` and symbol `select`.
///
/// Queries walk the code tree; at each node a rank (down) or select (up) on
/// that node's bit vector maps positions between parent and child.
#[derive(Clone, Debug)]
pub struct WaveletTree {
    nodes: Vec<WtNode>,
    codes: Vec<Code>,
    root: ChildRef,
    /// Set when at most one distinct symbol exists (its code is empty).
    single: Option<u64>,
    len: usize,
    shape: WaveletShape,
    backing: WaveletBacking,
}

impl WaveletTree {
    /// Builds a wavelet tree over `seq` with plain node bit vectors.
    ///
    /// # Panics
    /// Panics if any symbol is `≥ sigma`.
    #[must_use]
    pub fn new(seq: &[u64], sigma: usize, shape: WaveletShape) -> Self {
        Self::with_backing(seq, sigma, shape, WaveletBacking::Plain)
    }

    /// Builds a wavelet tree with the given shape and node backing.
    ///
    /// # Panics
    /// Panics if any symbol is `≥ sigma`.
    #[must_use]
    pub fn with_backing(
        seq: &[u64],
        sigma: usize,
        shape: WaveletShape,
        backing: WaveletBacking,
    ) -> Self {
        for &s in seq {
            assert!(
                (s as usize) < sigma,
                "symbol {s} out of alphabet 0..{sigma}"
            );
        }
        let codes = match shape {
            WaveletShape::Balanced => {
                let width = crate::ceil_log2(sigma as u64) as u8;
                (0..sigma as u64)
                    .map(|s| Code {
                        bits: s,
                        len: width,
                    })
                    .collect()
            }
            WaveletShape::Huffman => {
                let mut freqs = vec![0u64; sigma];
                for &s in seq {
                    freqs[s as usize] += 1;
                }
                huffman::build_codes(&freqs)
            }
        };
        let mut tree = Self {
            nodes: Vec::new(),
            codes,
            root: ChildRef::None,
            single: None,
            len: seq.len(),
            shape,
            backing,
        };
        let distinct: std::collections::BTreeSet<u64> = seq.iter().copied().collect();
        if distinct.len() <= 1 {
            tree.single = distinct.into_iter().next();
            return tree;
        }
        // With ≥ 2 distinct symbols every present code has len ≥ 1.
        tree.root = tree.build_node(seq.to_vec(), 0);
        tree
    }

    /// Balanced shape, `n·⌈lg σ⌉` bits.
    #[must_use]
    pub fn balanced(seq: &[u64], sigma: usize) -> Self {
        Self::new(seq, sigma, WaveletShape::Balanced)
    }

    /// Huffman shape, `n(H0+1) + o(n)` bits.
    #[must_use]
    pub fn huffman(seq: &[u64], sigma: usize) -> Self {
        Self::new(seq, sigma, WaveletShape::Huffman)
    }

    fn build_node(&mut self, seq: Vec<u64>, depth: u8) -> ChildRef {
        debug_assert!(!seq.is_empty());
        let mut bits = BitVec::with_capacity(seq.len());
        let mut zeros = Vec::new();
        let mut ones = Vec::new();
        for &s in &seq {
            let bit = self.codes[s as usize].bit(depth);
            bits.push(bit);
            if bit {
                ones.push(s);
            } else {
                zeros.push(s);
            }
        }
        drop(seq);
        let left = self.build_child(zeros, depth + 1);
        let right = self.build_child(ones, depth + 1);
        let idx = self.nodes.len() as u32;
        self.nodes.push(WtNode {
            bits: NodeBits::build(bits, self.backing),
            left,
            right,
        });
        ChildRef::Node(idx)
    }

    fn build_child(&mut self, seq: Vec<u64>, depth: u8) -> ChildRef {
        if seq.is_empty() {
            return ChildRef::None;
        }
        let first = seq[0];
        if self.codes[first as usize].len == depth && seq.iter().all(|&s| s == first) {
            return ChildRef::Leaf(first);
        }
        self.build_node(seq, depth)
    }

    /// Sequence length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The shape this tree was built with.
    #[must_use]
    pub fn shape(&self) -> WaveletShape {
        self.shape
    }

    /// The symbol at position `i` (the paper's `access(S, q)` primitive).
    ///
    /// # Panics
    /// Panics in debug builds if `i >= len()`.
    /// Release builds elide the check on the packet path.
    #[must_use]
    pub fn access(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if let Some(s) = self.single {
            return s;
        }
        let mut node_ref = self.root;
        let mut pos = i;
        loop {
            match node_ref {
                ChildRef::Node(n) => {
                    let node = &self.nodes[n as usize];
                    let (bit, mapped) = node.bits.access_rank(pos);
                    pos = mapped;
                    node_ref = if bit { node.right } else { node.left };
                }
                ChildRef::Leaf(s) => return s,
                ChildRef::None => unreachable!("access walked into an empty branch"), // fibcheck: allow(hot-path): statically impossible: built trees have no dangling child on an in-bounds path
            }
        }
    }

    /// Number of occurrences of `sym` in positions `[0, i)` (the paper's
    /// `rank_s(S, q)` primitive).
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    pub fn rank_sym(&self, sym: u64, i: usize) -> usize {
        assert!(
            i <= self.len,
            "rank index {i} out of bounds (len {})",
            self.len
        );
        if let Some(s) = self.single {
            return if s == sym { i } else { 0 };
        }
        let Some(code) = self.codes.get(sym as usize) else {
            return 0;
        };
        if code.len == 0 {
            return 0; // zero-frequency symbol under Huffman coding
        }
        let mut node_ref = self.root;
        let mut pos = i;
        for depth in 0..code.len {
            match node_ref {
                ChildRef::Node(n) => {
                    let node = &self.nodes[n as usize];
                    let bit = code.bit(depth);
                    pos = node.bits.rank_bit(bit, pos);
                    node_ref = if bit { node.right } else { node.left };
                }
                ChildRef::Leaf(s) => return if s == sym { pos } else { 0 },
                ChildRef::None => return 0,
            }
        }
        match node_ref {
            ChildRef::Leaf(s) if s == sym => pos,
            _ => 0,
        }
    }

    /// Position of the `q`-th occurrence of `sym` (`q ≥ 1`), or `None`
    /// (the paper's `select_s(S, q)` primitive).
    #[must_use]
    pub fn select_sym(&self, sym: u64, q: usize) -> Option<usize> {
        if q == 0 {
            return None;
        }
        if let Some(s) = self.single {
            return (s == sym && q <= self.len).then(|| q - 1);
        }
        let code = *self.codes.get(sym as usize)?;
        if code.len == 0 {
            return None;
        }
        self.select_rec(self.root, sym, code, 0, q)
    }

    fn select_rec(
        &self,
        node_ref: ChildRef,
        sym: u64,
        code: Code,
        depth: u8,
        q: usize,
    ) -> Option<usize> {
        match node_ref {
            ChildRef::Leaf(s) => (s == sym).then(|| q - 1),
            ChildRef::None => None,
            ChildRef::Node(n) => {
                let node = &self.nodes[n as usize];
                let bit = code.bit(depth);
                let child = if bit { node.right } else { node.left };
                let pos_in_child = self.select_rec(child, sym, code, depth + 1, q)?;
                node.bits.select_bit(bit, pos_in_child + 1)
            }
        }
    }

    /// Footprint in bits: all node bit vectors (with their rank
    /// directories) plus the per-symbol code table.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        let nodes: usize = self.nodes.iter().map(|n| n.bits.size_bits()).sum();
        nodes + self.codes.len() * (64 + 8)
    }

    /// Serializes the tree as one aligned word run: an 8-word meta block,
    /// a 4-word-per-node table (children + payload offset), then each
    /// node's bit vector as a nested aligned section. Codes are *not*
    /// serialized: the image view only answers `access`, which descends by
    /// stored bits alone.
    pub fn write_words(&self, out: &mut Vec<u64>) {
        debug_assert_eq!(out.len() % BLOCK_WORDS, 0, "section must start aligned");
        let base = out.len();
        out.extend_from_slice(&[
            self.len as u64,
            self.nodes.len() as u64,
            pack_child(self.root),
            match self.single {
                Some(s) => (1u64 << 63) | s,
                None => 0,
            },
            match self.backing {
                WaveletBacking::Plain => 0,
                WaveletBacking::Rrr => 1,
            },
            0, // patched below: total words of this run
            0,
            0,
        ]);
        let table_at = out.len();
        out.extend(std::iter::repeat_n(0u64, self.nodes.len() * 4));
        pad_to_block(out);
        for (idx, node) in self.nodes.iter().enumerate() {
            let payload_off = (out.len() - base) as u64;
            match &node.bits {
                NodeBits::Plain(v) => v.write_words(out),
                NodeBits::Rrr(v) => v.write_words(out),
            }
            out[table_at + idx * 4] = pack_child(node.left);
            out[table_at + idx * 4 + 1] = pack_child(node.right);
            out[table_at + idx * 4 + 2] = payload_off;
        }
        out[base + 5] = (out.len() - base) as u64;
    }
}

/// Child-reference packing for the serialized node table: tag in the top
/// two bits (0 = none, 1 = node, 2 = leaf), value below.
fn pack_child(c: ChildRef) -> u64 {
    match c {
        ChildRef::None => 0,
        ChildRef::Node(n) => (1u64 << 62) | u64::from(n),
        ChildRef::Leaf(s) => {
            debug_assert!(s < (1u64 << 62));
            (2u64 << 62) | s
        }
    }
}

fn unpack_child(w: u64) -> Result<ChildRef, StorageError> {
    let value = w & ((1u64 << 62) - 1);
    match w >> 62 {
        0 => Ok(ChildRef::None),
        1 => u32::try_from(value)
            .map(ChildRef::Node)
            .map_err(|_| StorageError("wavelet node index too large")),
        2 => Ok(ChildRef::Leaf(value)),
        _ => Err(StorageError("wavelet child tag invalid")),
    }
}

/// A borrowed node bit vector, materialized on the fly during descent.
enum NodeBitsRef<'a> {
    Plain(RsBitVecRef<'a>),
    Rrr(RrrVecRef<'a>),
}

impl<'a> NodeBitsRef<'a> {
    #[inline]
    fn access_rank(&self, i: usize) -> (bool, usize) {
        let (bit, r1) = match self {
            Self::Plain(v) => v.access_rank1(i),
            Self::Rrr(v) => v.access_rank1(i),
        };
        (bit, if bit { r1 } else { i - r1 })
    }
}

/// Borrowed zero-copy view of a serialized [`WaveletTree`], supporting
/// `access` (the primitive the XBW-b lookup loop consumes).
#[derive(Clone, Copy, Debug)]
pub struct WaveletTreeRef<'a> {
    /// The full serialized run (meta + table + payloads).
    words: &'a [u64],
    n_nodes: usize,
    root: u64,
    single: Option<u64>,
    len: usize,
    backing: WaveletBacking,
}

impl<'a> WaveletTreeRef<'a> {
    /// Parses and validates a view from words written by
    /// [`WaveletTree::write_words`], borrowing — never copying — the node
    /// payloads. Validation parses every node once (children in range and
    /// strictly decreasing, payload sections well-formed), so descent
    /// cannot loop or panic on inputs that pass. Returns the view and the
    /// number of words consumed.
    ///
    /// # Errors
    /// [`StorageError`] on truncated or structurally inconsistent input.
    pub fn from_words(words: &'a [u64]) -> Result<(Self, usize), StorageError> {
        let meta = storage::slice(words, 0, BLOCK_WORDS)?;
        let len = meta_usize(meta[0])?;
        let n_nodes = meta_usize(meta[1])?;
        let root = meta[2];
        let single = (meta[3] >> 63 == 1).then_some(meta[3] & !(1u64 << 63));
        let backing = match meta[4] {
            0 => WaveletBacking::Plain,
            1 => WaveletBacking::Rrr,
            _ => return Err(StorageError("wavelet backing invalid")),
        };
        let consumed = meta_usize(meta[5])?;
        if consumed > words.len() || consumed % BLOCK_WORDS != 0 {
            return Err(StorageError("wavelet run truncated"));
        }
        let view = Self {
            words: &words[..consumed],
            n_nodes,
            root,
            single,
            len,
            backing,
        };
        // Structural validation: every child reference in range, node
        // indices strictly decreasing parent → child (the builder pushes
        // children first), every payload parseable and length-consistent.
        storage::slice(words, BLOCK_WORDS, n_nodes * 4)?;
        match unpack_child(root)? {
            ChildRef::Node(n) if (n as usize) < n_nodes => {}
            ChildRef::Node(_) => return Err(StorageError("wavelet root out of range")),
            _ => {}
        }
        for idx in 0..n_nodes {
            let (left, right, bits) = view.node(idx)?;
            for child in [left, right] {
                if let ChildRef::Node(c) = unpack_child(child)? {
                    if c as usize >= idx {
                        return Err(StorageError("wavelet child does not decrease"));
                    }
                }
            }
            let node_len = match &bits {
                NodeBitsRef::Plain(v) => v.len(),
                NodeBitsRef::Rrr(v) => v.len(),
            };
            if node_len == 0 {
                return Err(StorageError("wavelet node is empty"));
            }
        }
        if n_nodes == 0 && len > 0 && single.is_none() {
            return Err(StorageError("wavelet sequence has no storage"));
        }
        Ok((view, consumed))
    }

    /// The pointer range of the borrowed run, for zero-copy assertions in
    /// tests.
    #[must_use]
    pub fn payload_ptr_range(&self) -> std::ops::Range<usize> {
        let start = self.words.as_ptr() as usize;
        start..start + std::mem::size_of_val(self.words)
    }

    /// Node `idx`: `(packed left, packed right, bits view)`.
    #[inline]
    fn node(&self, idx: usize) -> Result<(u64, u64, NodeBitsRef<'a>), StorageError> {
        if idx >= self.n_nodes {
            return Err(StorageError("wavelet node index out of range"));
        }
        let rec = storage::slice(self.words, BLOCK_WORDS + idx * 4, 4)?;
        let payload_off = meta_usize(rec[2])?;
        let payload = self
            .words
            .get(payload_off..)
            .ok_or(StorageError("wavelet payload offset out of range"))?;
        let bits = match self.backing {
            WaveletBacking::Plain => NodeBitsRef::Plain(RsBitVecRef::from_words(payload)?.0),
            WaveletBacking::Rrr => NodeBitsRef::Rrr(RrrVecRef::from_words(payload)?.0),
        };
        Ok((rec[0], rec[1], bits))
    }

    /// Sequence length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The symbol at position `i` (same walk as [`WaveletTree::access`]).
    ///
    /// # Panics
    /// Panics in debug builds if `i >= len()`.
    /// Release builds elide the check on the packet path.
    #[must_use]
    pub fn access(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if let Some(s) = self.single {
            return s;
        }
        let mut node_ref = unpack_child(self.root).expect("validated at parse"); // fibcheck: allow(hot-path): image validated at parse; a miss here is unreachable
        let mut pos = i;
        loop {
            match node_ref {
                ChildRef::Node(n) => {
                    let (left, right, bits) = self.node(n as usize).expect("validated at parse"); // fibcheck: allow(hot-path): image validated at parse; a miss here is unreachable
                    let (bit, mapped) = bits.access_rank(pos);
                    pos = mapped;
                    let child = if bit { right } else { left };
                    // A dangling child is impossible in a parse-validated
                    // image; route it to the None arm below.
                    node_ref = unpack_child(child).unwrap_or(ChildRef::None);
                }
                ChildRef::Leaf(s) => return s,
                ChildRef::None => unreachable!("access walked into an empty branch"), // fibcheck: allow(hot-path): statically impossible: built trees have no dangling child on an in-bounds path
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all_ops(seq: &[u64], sigma: usize, shape: WaveletShape) {
        let wt = WaveletTree::new(seq, sigma, shape);
        assert_eq!(wt.len(), seq.len());
        // access
        for (i, &s) in seq.iter().enumerate() {
            assert_eq!(wt.access(i), s, "access({i}) [{shape:?}]");
        }
        // rank for every symbol at sampled positions
        for sym in 0..sigma as u64 {
            let mut count = 0;
            for i in 0..=seq.len() {
                assert_eq!(wt.rank_sym(sym, i), count, "rank_{sym}({i}) [{shape:?}]");
                if i < seq.len() && seq[i] == sym {
                    count += 1;
                }
            }
        }
        // select inverts rank
        for sym in 0..sigma as u64 {
            let mut q = 0;
            for (i, &s) in seq.iter().enumerate() {
                if s == sym {
                    q += 1;
                    assert_eq!(
                        wt.select_sym(sym, q),
                        Some(i),
                        "select_{sym}({q}) [{shape:?}]"
                    );
                }
            }
            assert_eq!(wt.select_sym(sym, q + 1), None);
            assert_eq!(wt.select_sym(sym, 0), None);
        }
    }

    fn pseudo_seq(n: usize, sigma: u64, salt: u64) -> Vec<u64> {
        (0..n as u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt) >> 17) % sigma)
            .collect()
    }

    #[test]
    fn balanced_small_alphabet() {
        check_all_ops(&pseudo_seq(300, 4, 1), 4, WaveletShape::Balanced);
    }

    #[test]
    fn huffman_small_alphabet() {
        check_all_ops(&pseudo_seq(300, 4, 2), 4, WaveletShape::Huffman);
    }

    #[test]
    fn non_power_of_two_alphabet() {
        check_all_ops(&pseudo_seq(257, 5, 3), 5, WaveletShape::Balanced);
        check_all_ops(&pseudo_seq(257, 5, 4), 5, WaveletShape::Huffman);
    }

    #[test]
    fn skewed_distribution_both_shapes() {
        // 90% zeros, tail spread over 7 other symbols.
        let seq: Vec<u64> = (0..500u64)
            .map(|i| if i % 10 != 0 { 0 } else { 1 + (i / 10) % 7 })
            .collect();
        check_all_ops(&seq, 8, WaveletShape::Balanced);
        check_all_ops(&seq, 8, WaveletShape::Huffman);
    }

    #[test]
    fn single_distinct_symbol() {
        let seq = vec![3u64; 50];
        for shape in [WaveletShape::Balanced, WaveletShape::Huffman] {
            let wt = WaveletTree::new(&seq, 6, shape);
            assert_eq!(wt.access(49), 3);
            assert_eq!(wt.rank_sym(3, 50), 50);
            assert_eq!(wt.rank_sym(2, 50), 0);
            assert_eq!(wt.select_sym(3, 50), Some(49));
            assert_eq!(wt.select_sym(3, 51), None);
            assert_eq!(wt.select_sym(2, 1), None);
        }
    }

    #[test]
    fn empty_sequence() {
        let wt = WaveletTree::huffman(&[], 4);
        assert!(wt.is_empty());
        assert_eq!(wt.rank_sym(0, 0), 0);
        assert_eq!(wt.select_sym(0, 1), None);
    }

    #[test]
    fn absent_symbol_queries() {
        let seq = pseudo_seq(100, 3, 9); // symbols 0..3 only
        let wt = WaveletTree::huffman(&seq, 10);
        assert_eq!(wt.rank_sym(7, 100), 0);
        assert_eq!(wt.select_sym(7, 1), None);
        assert_eq!(wt.rank_sym(999, 100), 0, "out-of-alphabet symbol");
    }

    #[test]
    fn huffman_shape_compresses_skewed_input() {
        let n = 60_000usize;
        // ~97% symbol 0 out of 16 symbols: H0 ≈ 0.3, lg σ = 4.
        let seq: Vec<u64> = (0..n as u64)
            .map(|i| if i % 32 == 0 { 1 + (i / 32) % 15 } else { 0 })
            .collect();
        let bal = WaveletTree::balanced(&seq, 16);
        let huf = WaveletTree::huffman(&seq, 16);
        assert!(
            huf.size_bits() * 2 < bal.size_bits(),
            "huffman {} not < half of balanced {}",
            huf.size_bits(),
            bal.size_bits()
        );
    }

    #[test]
    fn rrr_backing_agrees_with_plain_on_all_ops() {
        let seq = pseudo_seq(700, 9, 21);
        let plain =
            WaveletTree::with_backing(&seq, 9, WaveletShape::Huffman, WaveletBacking::Plain);
        let rrr = WaveletTree::with_backing(&seq, 9, WaveletShape::Huffman, WaveletBacking::Rrr);
        for i in 0..seq.len() {
            assert_eq!(plain.access(i), rrr.access(i), "access({i})");
        }
        for sym in 0..9u64 {
            for i in (0..=seq.len()).step_by(13) {
                assert_eq!(plain.rank_sym(sym, i), rrr.rank_sym(sym, i));
            }
            for q in 1..=80 {
                assert_eq!(plain.select_sym(sym, q), rrr.select_sym(sym, q));
            }
        }
    }

    #[test]
    fn rrr_backing_breaks_the_one_bit_floor() {
        // 97% of symbols are 0: H0 ≈ 0.3 but Huffman alone cannot go below
        // 1 bit/symbol. With RRR-compressed nodes the total must drop well
        // under n bits.
        let n = 60_000usize;
        let seq: Vec<u64> = (0..n as u64)
            .map(|i| if i % 32 == 0 { 1 + (i / 32) % 15 } else { 0 })
            .collect();
        let plain =
            WaveletTree::with_backing(&seq, 16, WaveletShape::Huffman, WaveletBacking::Plain);
        let rrr = WaveletTree::with_backing(&seq, 16, WaveletShape::Huffman, WaveletBacking::Rrr);
        assert!(
            plain.size_bits() >= n,
            "plain Huffman cannot beat 1 bit/symbol"
        );
        assert!(
            rrr.size_bits() < n * 2 / 3,
            "RRR-backed tree too large: {} bits for {n} symbols",
            rrr.size_bits()
        );
    }

    #[test]
    fn larger_alphabet_roundtrip() {
        let seq = pseudo_seq(2000, 64, 11);
        let wt = WaveletTree::huffman(&seq, 64);
        for (i, &s) in seq.iter().enumerate() {
            assert_eq!(wt.access(i), s);
        }
    }

    #[test]
    fn serialized_view_access_matches_owned() {
        for backing in [WaveletBacking::Plain, WaveletBacking::Rrr] {
            for (n, sigma) in [(2000usize, 9u64), (700, 2), (64, 33)] {
                let seq = pseudo_seq(n, sigma, 77);
                let wt =
                    WaveletTree::with_backing(&seq, sigma as usize, WaveletShape::Huffman, backing);
                let mut words = Vec::new();
                wt.write_words(&mut words);
                assert_eq!(words.len() % 8, 0);
                let arena = crate::storage::Arena::from_words(&words);
                let (view, consumed) = WaveletTreeRef::from_words(arena.words()).unwrap();
                assert_eq!(consumed, words.len());
                let arena_range = arena.words().as_ptr_range();
                let pr = view.payload_ptr_range();
                assert!(
                    pr.start >= arena_range.start as usize && pr.end <= arena_range.end as usize
                );
                for (i, &s) in seq.iter().enumerate() {
                    assert_eq!(view.access(i), s, "{backing:?} access({i})");
                }
            }
        }
    }

    #[test]
    fn serialized_single_symbol_and_empty() {
        for seq in [vec![5u64; 40], Vec::new()] {
            let wt = WaveletTree::huffman(&seq, 8);
            let mut words = Vec::new();
            wt.write_words(&mut words);
            let (view, _) = WaveletTreeRef::from_words(&words).unwrap();
            assert_eq!(view.len(), seq.len());
            for (i, &s) in seq.iter().enumerate() {
                assert_eq!(view.access(i), s);
            }
        }
    }

    #[test]
    fn serialized_view_rejects_corruption() {
        let seq = pseudo_seq(900, 5, 3);
        let wt = WaveletTree::with_backing(&seq, 5, WaveletShape::Huffman, WaveletBacking::Rrr);
        let mut words = Vec::new();
        wt.write_words(&mut words);
        for cut in [0usize, 5, 8, 24, words.len() - 8] {
            assert!(WaveletTreeRef::from_words(&words[..cut]).is_err(), "{cut}");
        }
        let mut bad = words.clone();
        bad[4] = 7; // unknown backing
        assert!(WaveletTreeRef::from_words(&bad).is_err());
        let mut bad = words.clone();
        bad[8] = (1u64 << 62) | u64::from(u32::MAX); // child points out of range
        assert!(WaveletTreeRef::from_words(&bad).is_err());
        let mut bad = words;
        bad[5] = u64::MAX; // claimed length past the buffer
        assert!(WaveletTreeRef::from_words(&bad).is_err());
    }
}
