//! Canonical Huffman codes over small alphabets.
//!
//! Used to give the wavelet tree its Huffman shape, which is what stores the
//! XBW-b label string `S_α` in `n(H0+1) + o(n)` bits (the practical
//! realization of the generalized wavelet trees of Ferragina et al. cited in
//! Lemma 3 of the paper).

/// A single symbol's code: the `len` low bits of `bits`, **MSB first** when
/// traversing (bit at depth `d` is `(bits >> (len-1-d)) & 1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Code {
    /// Code word, right-aligned.
    pub bits: u64,
    /// Code length in bits. Length 0 is used for single-symbol alphabets.
    pub len: u8,
}

impl Code {
    /// The code bit at `depth ∈ [0, len)`, MSB first.
    #[must_use]
    #[inline]
    pub fn bit(self, depth: u8) -> bool {
        debug_assert!(depth < self.len);
        (self.bits >> (self.len - 1 - depth)) & 1 == 1
    }
}

/// Builds canonical Huffman codes for `freqs` (one entry per symbol; zero
/// frequencies get no code and yield `Code { bits: 0, len: 0 }`).
///
/// Returns one [`Code`] per input symbol. For a one-symbol alphabet the code
/// has length 0 (nothing needs to be stored to distinguish it).
///
/// # Panics
/// Panics if a code would exceed 64 bits, which cannot happen for the
/// alphabet sizes (δ ≤ a few hundred next-hops) this crate targets.
#[must_use]
pub fn build_codes(freqs: &[u64]) -> Vec<Code> {
    let live: Vec<usize> = (0..freqs.len()).filter(|&s| freqs[s] > 0).collect();
    let mut codes = vec![Code { bits: 0, len: 0 }; freqs.len()];
    if live.len() <= 1 {
        return codes; // zero-length code for 0 or 1 distinct symbols
    }

    // Package-merge-free classic Huffman over a scratch heap. Node ids:
    // 0..live.len() are leaves, others internal.
    #[derive(PartialEq, Eq)]
    struct HeapItem {
        weight: u64,
        node: usize,
    }
    impl Ord for HeapItem {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap by weight, ties by node id for determinism.
            other
                .weight
                .cmp(&self.weight)
                .then(other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for HeapItem {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = std::collections::BinaryHeap::new();
    let mut children: Vec<Option<(usize, usize)>> = vec![None; live.len()];
    for (leaf, &sym) in live.iter().enumerate() {
        heap.push(HeapItem {
            weight: freqs[sym],
            node: leaf,
        });
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("heap size checked");
        let b = heap.pop().expect("heap size checked");
        let node = children.len();
        children.push(Some((a.node, b.node)));
        heap.push(HeapItem {
            weight: a.weight.saturating_add(b.weight),
            node,
        });
    }
    let root = heap.pop().expect("non-empty alphabet").node;

    // Depth of every leaf.
    let mut depth = vec![0u8; live.len()];
    let mut stack = vec![(root, 0u8)];
    while let Some((node, d)) = stack.pop() {
        if node < live.len() {
            depth[node] = d;
        } else {
            let (l, r) = children[node].expect("internal node has children");
            assert!(d < 64, "Huffman code deeper than 64 bits");
            stack.push((l, d + 1));
            stack.push((r, d + 1));
        }
    }

    // Canonical assignment: sort by (depth, symbol), then count upward.
    let mut order: Vec<usize> = (0..live.len()).collect();
    order.sort_by_key(|&leaf| (depth[leaf], live[leaf]));
    let mut code: u64 = 0;
    let mut prev_len: u8 = 0;
    for &leaf in &order {
        let len = depth[leaf];
        code <<= len - prev_len;
        codes[live[leaf]] = Code { bits: code, len };
        code += 1;
        prev_len = len;
    }
    codes
}

/// Average code length in bits under the empirical distribution — the
/// compressed size per symbol achieved by these codes.
#[must_use]
pub fn average_length(freqs: &[u64], codes: &[Code]) -> f64 {
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let weighted: u64 = freqs
        .iter()
        .zip(codes)
        .map(|(&f, c)| f * u64::from(c.len))
        .sum();
    weighted as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_prefix_free(codes: &[Code]) -> bool {
        let live: Vec<&Code> = codes.iter().filter(|c| c.len > 0).collect();
        for (i, a) in live.iter().enumerate() {
            for b in live.iter().skip(i + 1) {
                let min_len = a.len.min(b.len);
                let pa = a.bits >> (a.len - min_len);
                let pb = b.bits >> (b.len - min_len);
                if pa == pb {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn single_symbol_gets_empty_code() {
        let codes = build_codes(&[42]);
        assert_eq!(codes[0].len, 0);
        let codes = build_codes(&[0, 7, 0]);
        assert_eq!(codes[1].len, 0);
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        let codes = build_codes(&[3, 9]);
        assert_eq!(codes[0].len, 1);
        assert_eq!(codes[1].len, 1);
        assert_ne!(codes[0].bits, codes[1].bits);
    }

    #[test]
    fn skewed_distribution_gives_short_code_to_frequent_symbol() {
        let codes = build_codes(&[100, 1, 1, 1]);
        assert_eq!(codes[0].len, 1, "dominant symbol must get 1 bit");
        assert!(codes[1].len >= 2);
        assert!(is_prefix_free(&codes));
    }

    #[test]
    fn codes_are_prefix_free_on_fibonacci_weights() {
        // Fibonacci weights force a maximally deep (skewed) tree.
        let freqs = [1u64, 1, 2, 3, 5, 8, 13, 21, 34, 55];
        let codes = build_codes(&freqs);
        assert!(is_prefix_free(&codes));
        // Deepest code has length alphabet-1 for Fibonacci weights.
        assert_eq!(codes.iter().map(|c| c.len).max(), Some(9));
    }

    #[test]
    fn average_length_within_one_bit_of_entropy() {
        let freqs = [50u64, 25, 15, 7, 3];
        let codes = build_codes(&freqs);
        let h0 = crate::shannon_entropy(&freqs);
        let avg = average_length(&freqs, &codes);
        assert!(avg >= h0 - 1e-9, "avg {avg} below entropy {h0}");
        assert!(avg < h0 + 1.0, "avg {avg} not within 1 bit of entropy {h0}");
    }

    #[test]
    fn msb_first_bit_extraction() {
        let c = Code {
            bits: 0b101,
            len: 3,
        };
        assert!(c.bit(0));
        assert!(!c.bit(1));
        assert!(c.bit(2));
    }

    #[test]
    fn zero_frequency_symbols_are_skipped() {
        let codes = build_codes(&[5, 0, 5, 0]);
        assert_eq!(codes[1].len, 0);
        assert_eq!(codes[3].len, 0);
        assert_eq!(codes[0].len, 1);
        assert_eq!(codes[2].len, 1);
    }

    #[test]
    fn uniform_distribution_gives_balanced_lengths() {
        let freqs = [10u64; 8];
        let codes = build_codes(&freqs);
        for c in &codes {
            assert_eq!(c.len, 3);
        }
        assert!(is_prefix_free(&codes));
    }
}
