//! Fixed-width packed integer arrays.

use crate::bits::BitVec;

/// A packed array of unsigned integers, each stored in exactly `width` bits.
///
/// This is the trivial `n·⌈lg δ⌉`-bit encoding the paper uses for the label
/// string `S_α` in the succinct (non-entropy) mode of XBW-b, and the backing
/// store for RRR block classes and serialized node records.
#[derive(Clone, Debug, Default)]
pub struct IntVec {
    bits: BitVec,
    width: u32,
    len: usize,
}

impl IntVec {
    /// Creates an empty vector of `width`-bit integers (`width ≤ 64`).
    ///
    /// A `width` of 0 is allowed and stores only the count: every element
    /// reads back as 0. This arises naturally for single-symbol alphabets.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!(width <= 64, "width {width} > 64");
        Self {
            bits: BitVec::new(),
            width,
            len: 0,
        }
    }

    /// Creates a vector of `len` zeros.
    #[must_use]
    pub fn zeros(width: u32, len: usize) -> Self {
        assert!(width <= 64, "width {width} > 64");
        Self {
            bits: BitVec::zeros(len * width as usize),
            width,
            len,
        }
    }

    /// Builds from a slice, using the smallest width that fits the maximum.
    #[must_use]
    pub fn from_slice_min_width(values: &[u64]) -> Self {
        let width = crate::ceil_log2(values.iter().max().map_or(0, |m| m + 1));
        let mut v = Self::new(width);
        for &x in values {
            v.push(x);
        }
        v
    }

    /// Element width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a value.
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits.
    pub fn push(&mut self, value: u64) {
        self.bits.push_bits(value, self.width);
        self.len += 1;
    }

    /// Reads element `i`.
    ///
    /// One bounds check, then a direct one- or two-word extraction — this
    /// sits on the query hot path of the RRR class scan and the packed
    /// XBW-b label string, so it bypasses the layered asserts of
    /// [`BitVec::get_bits`].
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let width = self.width as usize;
        if width == 0 {
            return 0;
        }
        // i < len ⇒ the field lies fully inside the pushed bits, so the
        // spill word exists whenever the field straddles a boundary.
        let pos = i * width;
        let (word, bit) = (pos / 64, pos % 64);
        let words = self.bits.words();
        let lo = words[word] >> bit;
        let have = 64 - bit;
        let raw = if width > have {
            lo | (words[word + 1] << have)
        } else {
            lo
        };
        if width == 64 {
            raw
        } else {
            raw & ((1u64 << width) - 1)
        }
    }

    /// Overwrites element `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()` or `value` does not fit in `width` bits.
    pub fn set(&mut self, i: usize, value: u64) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.bits
            .set_bits(i * self.width as usize, value, self.width);
    }

    /// Iterates over elements in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Payload footprint in bits.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.bits.size_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for width in [1u32, 3, 7, 13, 32, 63, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let mut v = IntVec::new(width);
            let values: Vec<u64> = (0..100u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
                .collect();
            for &x in &values {
                v.push(x);
            }
            for (i, &x) in values.iter().enumerate() {
                assert_eq!(v.get(i), x, "width {width} index {i}");
            }
        }
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut v = IntVec::zeros(11, 50);
        v.set(0, 2047);
        v.set(49, 1024);
        v.set(25, 1);
        assert_eq!(v.get(0), 2047);
        assert_eq!(v.get(49), 1024);
        assert_eq!(v.get(25), 1);
        assert_eq!(v.get(24), 0);
        assert_eq!(v.get(26), 0);
        v.set(0, 0);
        assert_eq!(v.get(0), 0);
    }

    #[test]
    fn zero_width_stores_count_only() {
        let mut v = IntVec::new(0);
        v.push(0);
        v.push(0);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(1), 0);
        assert_eq!(v.size_bits(), 0);
    }

    #[test]
    fn min_width_fits_maximum() {
        let v = IntVec::from_slice_min_width(&[0, 5, 3]);
        assert_eq!(v.width(), 3);
        assert_eq!(v.get(1), 5);
        let v = IntVec::from_slice_min_width(&[1, 0]);
        assert_eq!(v.width(), 1);
        let v = IntVec::from_slice_min_width(&[]);
        assert_eq!(v.width(), 0);
        assert!(v.is_empty());
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn push_too_wide_panics() {
        let mut v = IntVec::new(4);
        v.push(16);
    }
}
