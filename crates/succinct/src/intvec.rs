//! Fixed-width packed integer arrays.

use crate::bits::BitVec;
use crate::storage::{self, meta_usize, pad_to_block, StorageError, BLOCK_WORDS};

/// A packed array of unsigned integers, each stored in exactly `width` bits.
///
/// This is the trivial `n·⌈lg δ⌉`-bit encoding the paper uses for the label
/// string `S_α` in the succinct (non-entropy) mode of XBW-b, and the backing
/// store for RRR block classes and serialized node records.
#[derive(Clone, Debug, Default)]
pub struct IntVec {
    bits: BitVec,
    width: u32,
    len: usize,
}

impl IntVec {
    /// Creates an empty vector of `width`-bit integers (`width ≤ 64`).
    ///
    /// A `width` of 0 is allowed and stores only the count: every element
    /// reads back as 0. This arises naturally for single-symbol alphabets.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!(width <= 64, "width {width} > 64");
        Self {
            bits: BitVec::new(),
            width,
            len: 0,
        }
    }

    /// Creates a vector of `len` zeros.
    #[must_use]
    pub fn zeros(width: u32, len: usize) -> Self {
        assert!(width <= 64, "width {width} > 64");
        Self {
            bits: BitVec::zeros(len * width as usize),
            width,
            len,
        }
    }

    /// Builds from a slice, using the smallest width that fits the maximum.
    #[must_use]
    pub fn from_slice_min_width(values: &[u64]) -> Self {
        let width = crate::ceil_log2(values.iter().max().map_or(0, |m| m + 1));
        let mut v = Self::new(width);
        for &x in values {
            v.push(x);
        }
        v
    }

    /// Element width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a value.
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits.
    pub fn push(&mut self, value: u64) {
        self.bits.push_bits(value, self.width);
        self.len += 1;
    }

    /// Reads element `i`.
    ///
    /// One bounds check, then a direct one- or two-word extraction — this
    /// sits on the query hot path of the RRR class scan and the packed
    /// XBW-b label string, so it bypasses the layered asserts of
    /// [`BitVec::get_bits`].
    ///
    /// # Panics
    /// Panics in debug builds if `i >= len()`.
    /// Release builds elide the check on the packet path.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let width = self.width as usize;
        if width == 0 {
            return 0;
        }
        // i < len ⇒ the field lies fully inside the pushed bits, so the
        // spill word exists whenever the field straddles a boundary.
        let pos = i * width;
        let (word, bit) = (pos / 64, pos % 64);
        let words = self.bits.words();
        let lo = words[word] >> bit;
        let have = 64 - bit;
        let raw = if width > have {
            lo | (words[word + 1] << have)
        } else {
            lo
        };
        if width == 64 {
            raw
        } else {
            raw & ((1u64 << width) - 1)
        }
    }

    /// Overwrites element `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()` or `value` does not fit in `width` bits.
    pub fn set(&mut self, i: usize, value: u64) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.bits
            .set_bits(i * self.width as usize, value, self.width);
    }

    /// Iterates over elements in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The backing words (the final word has unused high bits zeroed).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        self.bits.words()
    }

    /// The borrowed zero-copy view (all reads go through the same
    /// extraction code whether the words are owned or loaded).
    #[must_use]
    #[inline]
    pub fn view(&self) -> IntVecRef<'_> {
        IntVecRef {
            words: self.bits.words(),
            width: self.width,
            len: self.len,
        }
    }

    /// Serializes as one 8-word meta block followed by the payload words,
    /// padded to a 64-byte boundary.
    pub fn write_words(&self, out: &mut Vec<u64>) {
        debug_assert_eq!(out.len() % BLOCK_WORDS, 0, "section must start aligned");
        out.extend_from_slice(&[self.width.into(), self.len as u64, 0, 0, 0, 0, 0, 0]);
        out.extend_from_slice(self.bits.words());
        pad_to_block(out);
    }

    /// Payload footprint in bits.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.bits.size_bits()
    }
}

/// Borrowed zero-copy view of an [`IntVec`].
#[derive(Clone, Copy, Debug)]
pub struct IntVecRef<'a> {
    words: &'a [u64],
    width: u32,
    len: usize,
}

impl<'a> IntVecRef<'a> {
    /// Parses a view from words written by [`IntVec::write_words`],
    /// borrowing — never copying — the payload. Returns the view and the
    /// number of words consumed.
    ///
    /// # Errors
    /// [`StorageError`] on truncated or structurally inconsistent input.
    pub fn from_words(words: &'a [u64]) -> Result<(Self, usize), StorageError> {
        let meta = storage::slice(words, 0, BLOCK_WORDS)?;
        let width = u32::try_from(meta[0]).map_err(|_| StorageError("intvec width"))?;
        let len = meta_usize(meta[1])?;
        if width > 64 {
            return Err(StorageError("intvec width > 64"));
        }
        let payload_words = len
            .checked_mul(width as usize)
            .ok_or(StorageError("intvec size overflows"))?
            .div_ceil(64);
        let payload = storage::slice(words, BLOCK_WORDS, payload_words)?;
        let consumed = (BLOCK_WORDS + payload_words).div_ceil(BLOCK_WORDS) * BLOCK_WORDS;
        if consumed > words.len() {
            return Err(StorageError("intvec padding truncated"));
        }
        Ok((
            Self {
                words: payload,
                width,
                len,
            },
            consumed,
        ))
    }

    /// The pointer range of the borrowed payload words, for zero-copy
    /// assertions in tests.
    #[must_use]
    pub fn payload_ptr_range(&self) -> std::ops::Range<usize> {
        let start = self.words.as_ptr() as usize;
        start..start + std::mem::size_of_val(self.words)
    }

    /// Element width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads element `i` — one bounds check, then a direct one- or
    /// two-word extraction (the query hot path of the RRR class scan and
    /// the packed XBW-b label string).
    ///
    /// # Panics
    /// Panics in debug builds if `i >= len()`.
    /// Release builds elide the check on the packet path.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let width = self.width as usize;
        if width == 0 {
            return 0;
        }
        // i < len ⇒ the field lies fully inside the pushed bits, so the
        // spill word exists whenever the field straddles a boundary.
        let pos = i * width;
        let (word, bit) = (pos / 64, pos % 64);
        let lo = self.words[word] >> bit;
        let have = 64 - bit;
        let raw = if width > have {
            lo | (self.words[word + 1] << have)
        } else {
            lo
        };
        if width == 64 {
            raw
        } else {
            raw & ((1u64 << width) - 1)
        }
    }

    /// Payload footprint in bits.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.words.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for width in [1u32, 3, 7, 13, 32, 63, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let mut v = IntVec::new(width);
            let values: Vec<u64> = (0..100u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
                .collect();
            for &x in &values {
                v.push(x);
            }
            for (i, &x) in values.iter().enumerate() {
                assert_eq!(v.get(i), x, "width {width} index {i}");
            }
        }
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut v = IntVec::zeros(11, 50);
        v.set(0, 2047);
        v.set(49, 1024);
        v.set(25, 1);
        assert_eq!(v.get(0), 2047);
        assert_eq!(v.get(49), 1024);
        assert_eq!(v.get(25), 1);
        assert_eq!(v.get(24), 0);
        assert_eq!(v.get(26), 0);
        v.set(0, 0);
        assert_eq!(v.get(0), 0);
    }

    #[test]
    fn zero_width_stores_count_only() {
        let mut v = IntVec::new(0);
        v.push(0);
        v.push(0);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(1), 0);
        assert_eq!(v.size_bits(), 0);
    }

    #[test]
    fn min_width_fits_maximum() {
        let v = IntVec::from_slice_min_width(&[0, 5, 3]);
        assert_eq!(v.width(), 3);
        assert_eq!(v.get(1), 5);
        let v = IntVec::from_slice_min_width(&[1, 0]);
        assert_eq!(v.width(), 1);
        let v = IntVec::from_slice_min_width(&[]);
        assert_eq!(v.width(), 0);
        assert!(v.is_empty());
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn push_too_wide_panics() {
        let mut v = IntVec::new(4);
        v.push(16);
    }

    #[test]
    fn serialized_view_answers_identically() {
        let mut v = IntVec::new(13);
        let values: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9E37) & 0x1FFF)
            .collect();
        for &x in &values {
            v.push(x);
        }
        let mut words = Vec::new();
        v.write_words(&mut words);
        let (view, consumed) = IntVecRef::from_words(&words).unwrap();
        assert_eq!(consumed, words.len());
        assert_eq!(view.len(), v.len());
        for (i, &x) in values.iter().enumerate() {
            assert_eq!(view.get(i), x, "index {i}");
        }
        // Truncation and bad meta fail loudly.
        assert!(IntVecRef::from_words(&words[..8]).is_err());
        let mut bad = words.clone();
        bad[0] = 65;
        assert!(IntVecRef::from_words(&bad).is_err());
        let mut bad = words;
        bad[1] = u64::MAX;
        assert!(IntVecRef::from_words(&bad).is_err());
    }
}
