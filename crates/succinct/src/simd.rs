//! Runtime-dispatched SIMD gather lanes for the flat `u64`-word engines.
//!
//! The interleaved batch kernels in `fib-core`/`fib-trie` walk 4 packets
//! in lockstep; each step performs 4 independent indexed loads from one
//! flat word array. On AVX2 hardware a single `VPGATHERQQ`
//! ([`core::arch::x86_64::_mm256_i64gather_epi64`]) issues all 4 loads at
//! once, shrinking the per-step uop count and letting the load ports run
//! the lanes' cache misses in parallel without four separate address
//! computations.
//!
//! The workspace is compiled for `x86-64-v2` (no AVX2 at compile time),
//! so everything here is **runtime-dispatched**: [`simd_active`] caches
//! one `is_x86_feature_detected!("avx2")` probe, and every gather
//! helper falls back to plain bounds-checked indexing — byte-identical
//! results — when AVX2 is absent, when a lane index is out of bounds, or
//! when the `FIB_FORCE_SCALAR` environment variable is set (the CI
//! differential job runs the whole suite both ways).
//!
//! Safety containment mirrors `mem.rs`: this is one of the two modules in
//! the crate allowed `unsafe`, and the only unsafe operation is the
//! gather intrinsic itself, executed strictly after (a) the CPU feature
//! check and (b) a full bounds check of every lane index — the public
//! wrappers are sound for all inputs.

use std::sync::atomic::{AtomicU8, Ordering};

/// Lanes per gather — one AVX2 register of `u64`s, matching the 4-lane
/// batch kernels (`SER_BATCH_LANES`/`MB_BATCH_LANES`/`LC_BATCH_LANES`).
pub const GATHER_LANES: usize = 4;

/// Cached dispatch state: 0 = undetected, 1 = SIMD, 2 = scalar.
static SIMD_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether the gather helpers will use AVX2 on this machine: true iff the
/// CPU reports AVX2 and `FIB_FORCE_SCALAR` is unset (or `0`). The answer
/// is computed once and cached for the process.
#[inline]
#[must_use]
pub fn simd_active() -> bool {
    // ordering: Relaxed — pure cache of an idempotent detection; every
    // thread that races the fill computes and stores the same value, and
    // no other memory depends on observing it.
    match SIMD_STATE.load(Ordering::Relaxed) {
        0 => detect(),
        s => s == 1,
    }
}

/// The dispatch label benchmarks report (`"avx2"` or `"scalar"`).
#[must_use]
pub fn simd_label() -> &'static str {
    if simd_active() {
        "avx2"
    } else {
        "scalar"
    }
}

#[cold]
fn detect() -> bool {
    let forced_scalar =
        std::env::var_os("FIB_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
    #[cfg(target_arch = "x86_64")]
    let has_avx2 = is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let has_avx2 = false;
    let enabled = has_avx2 && !forced_scalar;
    // ordering: Relaxed — idempotent cache fill, see `simd_active`.
    SIMD_STATE.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
    enabled
}

/// Gathers `words[idx[lane]]` for all four lanes.
///
/// Dispatches to one AVX2 `VPGATHERQQ` when [`simd_active`] and every
/// index is in bounds; otherwise falls back to scalar indexing with the
/// exact semantics of `[words[idx[0] as usize], …]` — including the
/// panic-on-out-of-bounds behaviour of the scalar kernels it replaces.
#[inline]
#[must_use]
#[allow(unsafe_code)]
pub fn gather4(words: &[u64], idx: [u64; 4]) -> [u64; 4] {
    #[cfg(target_arch = "x86_64")]
    {
        let max = idx[0].max(idx[1]).max(idx[2]).max(idx[3]);
        if (max as usize) < words.len() && simd_active() {
            // SAFETY: AVX2 presence was verified by `simd_active` and
            // every lane index is `< words.len()`, so the gather reads
            // only inside the borrowed slice.
            return unsafe { gather4_avx2(words, idx) };
        }
    }
    [
        words[idx[0] as usize],
        words[idx[1] as usize],
        words[idx[2] as usize],
        words[idx[3] as usize],
    ]
}

/// [`gather4`] over packed `u32` pairs (the `push_u32s`/[`get_u32`]
/// layout): gathers the four *words* holding packed entries `idx[lane]`,
/// then extracts each entry's half.
///
/// [`get_u32`]: crate::storage::get_u32
#[inline]
#[must_use]
pub fn gather4_u32(words: &[u64], idx: [u64; 4]) -> [u32; 4] {
    let gathered = gather4(words, [idx[0] / 2, idx[1] / 2, idx[2] / 2, idx[3] / 2]);
    let mut out = [0u32; 4];
    for lane in 0..4 {
        out[lane] = (gathered[lane] >> (32 * (idx[lane] % 2))) as u32;
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
unsafe fn gather4_avx2(words: &[u64], idx: [u64; 4]) -> [u64; 4] {
    use core::arch::x86_64::{_mm256_i64gather_epi64, _mm256_set_epi64x, _mm256_storeu_si256};
    // SAFETY (caller contract): AVX2 is available and idx[lane] <
    // words.len() for every lane; scale 8 makes each lane read the u64 at
    // words_ptr + idx[lane], all inside the slice.
    unsafe {
        let vindex = _mm256_set_epi64x(idx[3] as i64, idx[2] as i64, idx[1] as i64, idx[0] as i64);
        let gathered = _mm256_i64gather_epi64(words.as_ptr().cast::<i64>(), vindex, 8);
        let mut out = [0u64; 4];
        _mm256_storeu_si256(out.as_mut_ptr().cast(), gathered);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather4_matches_scalar_indexing() {
        let words: Vec<u64> = (0..1024u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        for base in [0u64, 1, 17, 511, 1020] {
            let idx = [base, (base + 7) % 1024, 1023 - base, base / 2];
            let got = gather4(&words, idx);
            let want = [
                words[idx[0] as usize],
                words[idx[1] as usize],
                words[idx[2] as usize],
                words[idx[3] as usize],
            ];
            assert_eq!(got, want, "idx {idx:?} (simd_active = {})", simd_active());
        }
    }

    #[test]
    fn gather4_u32_matches_get_u32() {
        use crate::storage::{get_u32, push_u32s};
        let mut words = Vec::new();
        let values: Vec<u32> = (0..257u32).map(|i| i.wrapping_mul(0x0101_6B55)).collect();
        push_u32s(&mut words, values.iter().copied());
        let idx = [0u64, 1, 255, 256];
        let got = gather4_u32(&words, idx);
        for lane in 0..4 {
            assert_eq!(got[lane], get_u32(&words, idx[lane] as usize));
            assert_eq!(got[lane], values[idx[lane] as usize]);
        }
    }

    #[test]
    fn dispatch_state_is_cached_and_labelled() {
        let first = simd_active();
        assert_eq!(first, simd_active(), "detection must be stable");
        let label = simd_label();
        assert!(label == "avx2" || label == "scalar");
        assert_eq!(label == "avx2", first);
    }
}
