//! RRR compressed bit vector (Raman–Raman–Rao, SODA 2002).
//!
//! The bit string is split into 63-bit blocks. Each block is stored as a
//! *class* (its popcount, 6 bits) plus an *offset* (the block's index among
//! all 63-bit words of that popcount, `⌈lg C(63,k)⌉` bits), encoded with the
//! combinatorial number system. Low- and high-popcount blocks get short
//! offsets, so the total is `n·H0 + o(n)` bits: this is the structure
//! Lemma 2/3 of the paper uses to store the trie shape string `S_I` of
//! XBW-b. A superblock directory (one rank count and one offset-stream
//! position every 32 blocks, as two `u32`s) provides `rank`/`access` with a
//! bounded scan — O(1) in the word-RAM sense, ~32 six-bit reads plus one
//! 63-step block decode in practice.

use std::sync::OnceLock;

use crate::bits::BitVec;
use crate::intvec::IntVec;

/// Bits per RRR block. 63 keeps every offset and every binomial in a `u64`.
const BLOCK: usize = 63;
/// Blocks per superblock.
const SUPER: usize = 32;

/// Pascal's triangle up to C(63, k), in `u64`.
fn binomials() -> &'static [[u64; BLOCK + 1]; BLOCK + 1] {
    static TABLE: OnceLock<[[u64; BLOCK + 1]; BLOCK + 1]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut c = [[0u64; BLOCK + 1]; BLOCK + 1];
        for n in 0..=BLOCK {
            c[n][0] = 1;
            for k in 1..=n {
                c[n][k] = c[n - 1][k - 1] + if k < n { c[n - 1][k] } else { 0 };
            }
        }
        c
    })
}

/// Offset widths `⌈lg C(63,k)⌉` per class.
fn offset_widths() -> &'static [u32; BLOCK + 1] {
    static WIDTHS: OnceLock<[u32; BLOCK + 1]> = OnceLock::new();
    WIDTHS.get_or_init(|| {
        let c = binomials();
        let mut w = [0u32; BLOCK + 1];
        for (k, entry) in w.iter_mut().enumerate() {
            *entry = crate::ceil_log2(c[BLOCK][k]);
        }
        w
    })
}

/// Ranks `pattern` (LSB-first, `k = popcount`) in the lexicographic order of
/// all 63-bit patterns with that popcount, via the combinatorial number
/// system: scanning positions MSB → LSB, a set bit at position `j` skips the
/// `C(j, k_remaining)` patterns that have a clear bit there.
#[inline]
fn encode_offset(pattern: u64, k: usize) -> u64 {
    let c = binomials();
    let mut offset = 0u64;
    let mut remaining = k;
    let mut j = BLOCK;
    while remaining > 0 {
        j -= 1;
        if (pattern >> j) & 1 == 1 {
            offset += c[j][remaining];
            remaining -= 1;
        }
    }
    offset
}

/// Inverse of [`encode_offset`].
#[inline]
fn decode_offset(mut offset: u64, k: usize) -> u64 {
    let c = binomials();
    let mut pattern = 0u64;
    let mut remaining = k;
    let mut j = BLOCK;
    while remaining > 0 {
        j -= 1;
        let skip = c[j][remaining];
        if offset >= skip {
            offset -= skip;
            pattern |= 1u64 << j;
            remaining -= 1;
        }
    }
    pattern
}

/// An immutable, entropy-compressed bit vector with constant-time `rank`
/// and `access` and O(log n) `select`.
#[derive(Clone, Debug)]
pub struct RrrVec {
    /// 6-bit class (popcount) of each block.
    classes: IntVec,
    /// Concatenated variable-width offsets.
    offsets: BitVec,
    /// Per superblock: ones strictly before it, and the bit position in
    /// `offsets` where it starts. `u32` suffices for both at FIB scale and
    /// halves the directory overhead.
    sup: Vec<(u32, u32)>,
    len: usize,
    ones: usize,
}

impl RrrVec {
    /// Compresses `bits`.
    ///
    /// # Panics
    /// Panics if `bits` exceeds `u32::MAX` bits — far beyond any FIB.
    #[must_use]
    pub fn new(bits: &BitVec) -> Self {
        assert!(
            bits.len() < u32::MAX as usize,
            "RrrVec limited to 2^32 bits"
        );
        let widths = offset_widths();
        let n_blocks = bits.len().div_ceil(BLOCK);
        let mut classes = IntVec::new(6);
        let mut offsets = BitVec::new();
        let mut sup = Vec::with_capacity(n_blocks / SUPER + 2);
        let mut ones: u64 = 0;
        for b in 0..n_blocks {
            if b % SUPER == 0 {
                sup.push((ones as u32, offsets.len() as u32));
            }
            let start = b * BLOCK;
            let width = (bits.len() - start).min(BLOCK) as u32;
            // Final block is implicitly padded with zeros.
            let pattern = bits.get_bits(start, width);
            let k = pattern.count_ones() as usize;
            classes.push(k as u64);
            offsets.push_bits(encode_offset(pattern, k), widths[k]);
            ones += k as u64;
        }
        // Sentinel superblock simplifies select's binary search.
        sup.push((ones as u32, offsets.len() as u32));
        Self {
            classes,
            offsets,
            sup,
            len: bits.len(),
            ones: ones as usize,
        }
    }

    /// Number of bits in the original vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the original vector was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Total number of clear bits.
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// Decodes block `b`, returning `(pattern, ones_before_block)`.
    #[inline]
    fn decode_block(&self, b: usize) -> (u64, usize) {
        let widths = offset_widths();
        let s = b / SUPER;
        let (mut ones, mut pos) = (self.sup[s].0 as usize, self.sup[s].1 as usize);
        for j in (s * SUPER)..b {
            let k = self.classes.get(j) as usize;
            ones += k;
            pos += widths[k] as usize;
        }
        let k = self.classes.get(b) as usize;
        let off = self.offsets.get_bits(pos, widths[k]);
        (decode_offset(off, k), ones)
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        let (pattern, _) = self.decode_block(i / BLOCK);
        (pattern >> (i % BLOCK)) & 1 == 1
    }

    /// Number of set bits in `[0, i)`.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    pub fn rank1(&self, i: usize) -> usize {
        assert!(
            i <= self.len,
            "rank index {i} out of bounds (len {})",
            self.len
        );
        if i == self.len {
            return self.ones;
        }
        let (pattern, ones) = self.decode_block(i / BLOCK);
        let partial = pattern & ((1u64 << (i % BLOCK)) - 1);
        ones + partial.count_ones() as usize
    }

    /// Number of clear bits in `[0, i)`.
    #[must_use]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Position of the `q`-th set bit (`q ≥ 1`), or `None`.
    #[must_use]
    pub fn select1(&self, q: usize) -> Option<usize> {
        if q == 0 || q > self.ones {
            return None;
        }
        let target = q as u32;
        let mut lo = 0usize;
        let mut hi = self.sup.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.sup[mid].0 < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let widths = offset_widths();
        let s = lo;
        let mut remaining = (target - self.sup[s].0) as usize;
        let mut pos = self.sup[s].1 as usize;
        let n_blocks = self.classes.len();
        for b in (s * SUPER)..n_blocks.min((s + 1) * SUPER) {
            let k = self.classes.get(b) as usize;
            if remaining <= k {
                let off = self.offsets.get_bits(pos, widths[k]);
                let mut pattern = decode_offset(off, k);
                for _ in 1..remaining {
                    pattern &= pattern - 1;
                }
                return Some(b * BLOCK + pattern.trailing_zeros() as usize);
            }
            remaining -= k;
            pos += widths[k] as usize;
        }
        unreachable!("select1: superblock directory inconsistent");
    }

    /// Position of the `q`-th clear bit (`q ≥ 1`), or `None`.
    #[must_use]
    pub fn select0(&self, q: usize) -> Option<usize> {
        if q == 0 || q > self.count_zeros() {
            return None;
        }
        let zeros_before = |s: usize| -> usize {
            let bits_before = (s * SUPER * BLOCK).min(self.len);
            bits_before - self.sup[s].0 as usize
        };
        let mut lo = 0usize;
        let mut hi = self.sup.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if zeros_before(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let widths = offset_widths();
        let s = lo;
        let mut remaining = q - zeros_before(s);
        let mut pos = self.sup[s].1 as usize;
        let n_blocks = self.classes.len();
        for b in (s * SUPER)..n_blocks.min((s + 1) * SUPER) {
            let k = self.classes.get(b) as usize;
            let block_bits = (self.len - b * BLOCK).min(BLOCK);
            let zeros_here = block_bits - k;
            if remaining <= zeros_here {
                let off = self.offsets.get_bits(pos, widths[k]);
                // Complement within the real (unpadded) width of this block;
                // block_bits ≤ 63 so the shift is always in range.
                let mask = (1u64 << block_bits) - 1;
                let mut pattern = !decode_offset(off, k) & mask;
                for _ in 1..remaining {
                    pattern &= pattern - 1;
                }
                return Some(b * BLOCK + pattern.trailing_zeros() as usize);
            }
            remaining -= zeros_here;
            pos += widths[k] as usize;
        }
        unreachable!("select0: superblock directory inconsistent");
    }

    /// Footprint in bits: classes, offsets and the superblock directory.
    /// The universal binomial table (constant, shared per process) is
    /// excluded, as is conventional.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.classes.size_bits() + self.offsets.size_bits() + self.sup.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(pattern: impl Fn(usize) -> bool, n: usize) -> (Vec<bool>, RrrVec) {
        let bools: Vec<bool> = (0..n).map(pattern).collect();
        let rrr = RrrVec::new(&BitVec::from_bools(&bools));
        (bools, rrr)
    }

    #[test]
    fn offset_coding_roundtrips_every_popcount() {
        for k in 0..=BLOCK {
            // A deterministic pattern with exactly k ones.
            let pattern: u64 =
                if k == 0 { 0 } else { ((1u128 << k) - 1) as u64 } << (BLOCK - k).min(10);
            let off = encode_offset(pattern, k);
            assert_eq!(decode_offset(off, k), pattern, "class {k}");
            assert!(
                off < binomials()[BLOCK][k].max(1),
                "offset in range for class {k}"
            );
        }
    }

    #[test]
    fn offset_coding_roundtrips_pseudorandom_patterns() {
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pattern = x & ((1u64 << BLOCK) - 1);
            let k = pattern.count_ones() as usize;
            assert_eq!(decode_offset(encode_offset(pattern, k), k), pattern);
        }
    }

    #[test]
    fn access_matches_original() {
        let (bools, rrr) = build(|i| (i * i) % 7 < 3, 3000);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(rrr.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn rank_matches_naive() {
        let (bools, rrr) = build(|i| i % 11 == 0 || i % 4 == 1, 2500);
        let mut ones = 0;
        for i in 0..=2500 {
            if i < 2500 {
                assert_eq!(rrr.rank1(i), ones, "rank1({i})");
            }
            if i < bools.len() && bools[i] {
                ones += 1;
            }
        }
        assert_eq!(rrr.rank1(2500), ones);
        assert_eq!(rrr.count_ones(), ones);
    }

    #[test]
    fn select1_inverts_rank() {
        let (bools, rrr) = build(|i| i % 6 == 2, 1800);
        let mut q = 0;
        for (i, &b) in bools.iter().enumerate() {
            if b {
                q += 1;
                assert_eq!(rrr.select1(q), Some(i), "select1({q})");
            }
        }
        assert_eq!(rrr.select1(q + 1), None);
        assert_eq!(rrr.select1(0), None);
    }

    #[test]
    fn select0_inverts_rank0() {
        let (bools, rrr) = build(|i| i % 6 != 2, 1801);
        let mut q = 0;
        for (i, &b) in bools.iter().enumerate() {
            if !b {
                q += 1;
                assert_eq!(rrr.select0(q), Some(i), "select0({q})");
            }
        }
        assert_eq!(rrr.select0(q + 1), None);
    }

    #[test]
    fn select0_skips_padded_final_block() {
        // All ones, non-multiple of block size: the final block carries
        // phantom zero padding that select0 must not surface.
        let (_, rrr) = build(|_| true, BLOCK + 5);
        assert_eq!(rrr.count_zeros(), 0);
        assert_eq!(rrr.select0(1), None);
    }

    #[test]
    fn compresses_sparse_input_well_below_plain() {
        // 1% density: H0 ≈ 0.081 bits/bit. RRR(63) should land well under
        // 0.3 bits/bit including all directory overhead.
        let n = 100_000;
        let (_, rrr) = build(|i| i % 100 == 0, n);
        assert!(
            rrr.size_bits() < n * 3 / 10,
            "sparse RRR too large: {} bits for {n}",
            rrr.size_bits()
        );
    }

    #[test]
    fn dense_balanced_input_stays_near_raw_size() {
        // H0 = 1: RRR cannot beat n bits; overhead must stay under ~15%.
        let n = 100_000;
        let (bools, rrr) = build(|i| (i.wrapping_mul(2_654_435_761)) % 2 == 0, n);
        let ones = bools.iter().filter(|&&b| b).count();
        assert!(ones > n / 3 && ones < 2 * n / 3, "pattern not balanced");
        assert!(
            rrr.size_bits() < n * 115 / 100,
            "dense RRR too large: {}",
            rrr.size_bits()
        );
    }

    #[test]
    fn empty_and_tiny_vectors() {
        let (_, rrr) = build(|_| true, 0);
        assert_eq!(rrr.len(), 0);
        assert_eq!(rrr.rank1(0), 0);
        let (_, rrr) = build(|i| i == 0, 1);
        assert!(rrr.get(0));
        assert_eq!(rrr.rank1(1), 1);
        assert_eq!(rrr.select1(1), Some(0));
    }

    #[test]
    fn boundary_at_block_and_superblock_edges() {
        let (bools, rrr) = build(|i| i % 2 == 0, BLOCK * SUPER * 3 + 7);
        for i in [
            BLOCK - 1,
            BLOCK,
            BLOCK + 1,
            BLOCK * SUPER - 1,
            BLOCK * SUPER,
            BLOCK * SUPER + 1,
            BLOCK * SUPER * 2,
            bools.len() - 1,
        ] {
            assert_eq!(rrr.get(i), bools[i], "get({i})");
            let naive = bools[..i].iter().filter(|&&b| b).count();
            assert_eq!(rrr.rank1(i), naive, "rank1({i})");
        }
    }

    #[test]
    fn binomial_table_sanity() {
        let c = binomials();
        assert_eq!(c[63][0], 1);
        assert_eq!(c[63][1], 63);
        assert_eq!(c[63][63], 1);
        assert_eq!(c[4][2], 6);
        // C(63,31) is the largest entry and must not have overflowed.
        assert_eq!(c[63][31], 916_312_070_471_295_267);
    }
}
