//! RRR compressed bit vector (Raman–Raman–Rao, SODA 2002).
//!
//! The bit string is split into 63-bit blocks. Each block is stored as a
//! *class* (its popcount, 6 bits) plus an *offset* (the block's index among
//! all 63-bit words of that popcount, `⌈lg C(63,k)⌉` bits), encoded with the
//! combinatorial number system. Low- and high-popcount blocks get short
//! offsets, so the total is `n·H0 + o(n)` bits: this is the structure
//! Lemma 2/3 of the paper uses to store the trie shape string `S_I` of
//! XBW-b. A two-level directory provides `rank`/`access` with a tightly
//! bounded scan: one superblock entry (rank count + offset-stream position
//! every 32 blocks, as two `u32`s) plus a packed sub-sample every 8 blocks,
//! so a query scans at most 7 six-bit classes before decoding its block.
//! Classes 0, 1, 2 and 63 skip the 63-step combinatorial decode entirely
//! (zero/full blocks read nothing, near-empty blocks are resolved from the
//! offset directly or a table).
//!
//! Per the crate's storage discipline the type splits into the owned
//! builder [`RrrVec`] — whose four streams (classes, offsets, superblocks,
//! sub-samples) are frozen into one contiguous aligned [`Arena`] — and the
//! zero-copy view [`RrrVecRef`] that carries all query code and can be
//! parsed straight out of a loaded FIB image.

use std::sync::OnceLock;

use crate::bits::BitVec;
use crate::intvec::IntVec;
use crate::storage::{
    self, meta_usize, pad_to_block, push_u32s, words_for_u32s, Arena, StorageError, BLOCK_WORDS,
};

/// Bits per RRR block. 63 keeps every offset and every binomial in a `u64`.
const BLOCK: usize = 63;
/// Blocks per superblock.
const SUPER: usize = 32;
/// Blocks per sub-sample within a superblock.
const SUB: usize = 8;
/// Sub-samples stored per (full) superblock: before blocks 8, 16 and 24.
const SUBS_PER_SUPER: usize = SUPER / SUB - 1;

/// Pascal's triangle up to C(63, k), in `u64`.
fn binomials() -> &'static [[u64; BLOCK + 1]; BLOCK + 1] {
    static TABLE: OnceLock<[[u64; BLOCK + 1]; BLOCK + 1]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut c = [[0u64; BLOCK + 1]; BLOCK + 1];
        for n in 0..=BLOCK {
            c[n][0] = 1;
            for k in 1..=n {
                c[n][k] = c[n - 1][k - 1] + if k < n { c[n - 1][k] } else { 0 };
            }
        }
        c
    })
}

/// Offset widths `⌈lg C(63,k)⌉` per class.
fn offset_widths() -> &'static [u32; BLOCK + 1] {
    static WIDTHS: OnceLock<[u32; BLOCK + 1]> = OnceLock::new();
    WIDTHS.get_or_init(|| {
        let c = binomials();
        let mut w = [0u32; BLOCK + 1];
        for (k, entry) in w.iter_mut().enumerate() {
            *entry = crate::ceil_log2(c[BLOCK][k]);
        }
        w
    })
}

/// Offset → pattern table for class 2 (C(63,2) = 1953 entries): two-bit
/// blocks are common in trie shape strings, and the table turns their
/// 63-step decode into one load.
fn class2_patterns() -> &'static Vec<u64> {
    static TABLE: OnceLock<Vec<u64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let n = binomials()[BLOCK][2] as usize;
        let mut t = vec![0u64; n]; // fibcheck: allow(hot-path): one-time OnceLock table build, amortized to zero per probe
        for hi in 1..BLOCK {
            for lo in 0..hi {
                let pattern = (1u64 << hi) | (1u64 << lo);
                t[encode_offset(pattern, 2) as usize] = pattern;
            }
        }
        t
    })
}

/// Ranks `pattern` (LSB-first, `k = popcount`) in the lexicographic order of
/// all 63-bit patterns with that popcount, via the combinatorial number
/// system: scanning positions MSB → LSB, a set bit at position `j` skips the
/// `C(j, k_remaining)` patterns that have a clear bit there.
#[inline]
fn encode_offset(pattern: u64, k: usize) -> u64 {
    let c = binomials();
    let mut offset = 0u64;
    let mut remaining = k;
    let mut j = BLOCK;
    while remaining > 0 {
        j -= 1;
        if (pattern >> j) & 1 == 1 {
            offset += c[j][remaining];
            remaining -= 1;
        }
    }
    offset
}

/// Inverse of [`encode_offset`].
#[inline]
fn decode_offset(mut offset: u64, k: usize) -> u64 {
    let c = binomials();
    let mut pattern = 0u64;
    let mut remaining = k;
    let mut j = BLOCK;
    while remaining > 0 {
        j -= 1;
        let skip = c[j][remaining];
        if offset >= skip {
            offset -= skip;
            pattern |= 1u64 << j;
            remaining -= 1;
        }
    }
    pattern
}

/// An immutable, entropy-compressed bit vector with constant-time `rank`
/// and `access` and O(log n) `select`.
///
/// Owned builder; all queries forward to the zero-copy [`RrrVecRef`].
#[derive(Clone, Debug)]
pub struct RrrVec {
    arena: Arena,
    len: usize,
    ones: usize,
    n_blocks: usize,
    /// Length of the offset stream in bits.
    off_bits: usize,
    /// Superblock entries, sentinel included.
    n_sup: usize,
    /// Packed sub-sample entries.
    n_sub: usize,
}

/// Borrowed zero-copy view of an [`RrrVec`].
#[derive(Clone, Copy, Debug)]
pub struct RrrVecRef<'a> {
    /// The whole payload as one slice — 6-bit classes (packed, at word
    /// 0), the variable-width offset stream, the superblock directory
    /// (one word each: ones strictly before it in the low 32 bits, offset
    /// bit position in the high 32), then the packed sub-samples
    /// (`ones_within << 16 | offset_bits_within` per entry, two per
    /// word). One slice + offsets keeps [`RrrVec::view`] nearly free,
    /// which matters because every owned query goes through it.
    words: &'a [u64],
    /// Word offset of the offset stream.
    off_off: usize,
    /// Word offset of the superblock directory.
    sup_off: usize,
    /// Word offset of the sub-samples.
    sub_off: usize,
    len: usize,
    ones: usize,
    n_blocks: usize,
    off_bits: usize,
    n_sup: usize,
}

/// Expected stream sizes for a vector of `len` bits: `(n_blocks, n_sup,
/// n_sub)`.
fn stream_shape(len: usize) -> (usize, usize, usize) {
    let n_blocks = len.div_ceil(BLOCK);
    let n_sup = n_blocks.div_ceil(SUPER) + 1;
    let n_sub = n_blocks.div_ceil(SUB) - n_blocks.div_ceil(SUPER);
    (n_blocks, n_sup, n_sub)
}

impl RrrVec {
    /// Compresses `bits`.
    ///
    /// # Panics
    /// Panics if `bits` exceeds `u32::MAX` bits — far beyond any FIB.
    #[must_use]
    pub fn new(bits: &BitVec) -> Self {
        assert!(
            bits.len() < u32::MAX as usize,
            "RrrVec limited to 2^32 bits"
        );
        let widths = offset_widths();
        let n_blocks = bits.len().div_ceil(BLOCK);
        let mut classes = IntVec::new(6);
        let mut offsets = BitVec::new();
        let mut sup: Vec<u64> = Vec::with_capacity(n_blocks / SUPER + 2);
        let mut sub: Vec<u32> = Vec::with_capacity(n_blocks / SUB + 1);
        let mut ones: u64 = 0;
        let (mut sup_ones, mut sup_pos) = (0u64, 0usize);
        for b in 0..n_blocks {
            if b % SUPER == 0 {
                sup.push(ones | ((offsets.len() as u64) << 32));
                (sup_ones, sup_pos) = (ones, offsets.len());
            } else if b % SUB == 0 {
                sub.push((((ones - sup_ones) as u32) << 16) | (offsets.len() - sup_pos) as u32);
            }
            let start = b * BLOCK;
            let width = (bits.len() - start).min(BLOCK) as u32;
            // Final block is implicitly padded with zeros.
            let pattern = bits.get_bits(start, width);
            let k = pattern.count_ones() as usize;
            classes.push(k as u64);
            offsets.push_bits(encode_offset(pattern, k), widths[k]);
            ones += k as u64;
        }
        // Sentinel superblock simplifies select's binary search.
        sup.push(ones | ((offsets.len() as u64) << 32));

        // Freeze the four streams into one contiguous arena.
        let (n_sup, n_sub, off_bits) = (sup.len(), sub.len(), offsets.len());
        let mut arena_words =
            Vec::with_capacity(classes.words().len() + offsets.words().len() + n_sup + n_sub);
        arena_words.extend_from_slice(classes.words());
        arena_words.extend_from_slice(offsets.words());
        arena_words.extend_from_slice(&sup);
        push_u32s(&mut arena_words, sub);
        Self {
            arena: Arena::from_words(&arena_words),
            len: bits.len(),
            ones: ones as usize,
            n_blocks,
            off_bits,
            n_sup,
            n_sub,
        }
    }

    /// The borrowed view all queries run on.
    #[must_use]
    #[inline]
    pub fn view(&self) -> RrrVecRef<'_> {
        let cw = (self.n_blocks * 6).div_ceil(64);
        let ow = self.off_bits.div_ceil(64);
        RrrVecRef {
            words: self.arena.words(),
            off_off: cw,
            sup_off: cw + ow,
            sub_off: cw + ow + self.n_sup,
            len: self.len,
            ones: self.ones,
            n_blocks: self.n_blocks,
            off_bits: self.off_bits,
            n_sup: self.n_sup,
        }
    }

    /// Serializes as one 8-word meta block followed by the arena words,
    /// padded to a 64-byte boundary.
    pub fn write_words(&self, out: &mut Vec<u64>) {
        debug_assert_eq!(out.len() % BLOCK_WORDS, 0, "section must start aligned");
        out.extend_from_slice(&[
            self.len as u64,
            self.ones as u64,
            self.off_bits as u64,
            0,
            0,
            0,
            0,
            0,
        ]);
        out.extend_from_slice(self.arena.words());
        pad_to_block(out);
    }

    /// Number of bits in the original vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the original vector was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Total number of clear bits.
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.view().get(i)
    }

    /// Number of set bits in `[0, i)`.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        self.view().rank1(i)
    }

    /// Number of clear bits in `[0, i)`.
    #[must_use]
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        self.view().rank0(i)
    }

    /// Fused `(get(i), rank1(i))` from a single block decode.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    #[inline]
    pub fn access_rank1(&self, i: usize) -> (bool, usize) {
        self.view().access_rank1(i)
    }

    /// Position of the `q`-th set bit (`q ≥ 1`), or `None`.
    #[must_use]
    pub fn select1(&self, q: usize) -> Option<usize> {
        self.view().select1(q)
    }

    /// Position of the `q`-th clear bit (`q ≥ 1`), or `None`.
    #[must_use]
    pub fn select0(&self, q: usize) -> Option<usize> {
        self.view().select0(q)
    }

    /// Footprint in bits: classes, offsets and both directory levels.
    /// The universal binomial and class-2 tables (constant, shared per
    /// process) are excluded, as is conventional.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        (self.n_blocks * 6).div_ceil(64) * 64
            + self.off_bits.div_ceil(64) * 64
            + self.n_sup * 64
            + self.n_sub * 32
    }
}

impl<'a> RrrVecRef<'a> {
    /// Parses a view from words written by [`RrrVec::write_words`],
    /// borrowing — never copying — the payload. Returns the view and the
    /// number of words consumed.
    ///
    /// # Errors
    /// [`StorageError`] on truncated or structurally inconsistent input.
    pub fn from_words(words: &'a [u64]) -> Result<(Self, usize), StorageError> {
        let meta = storage::slice(words, 0, BLOCK_WORDS)?;
        let len = meta_usize(meta[0])?;
        let ones = meta_usize(meta[1])?;
        let off_bits = meta_usize(meta[2])?;
        if ones > len || len >= u32::MAX as usize {
            return Err(StorageError("rrr counts inconsistent"));
        }
        let (n_blocks, n_sup, n_sub) = stream_shape(len);
        let cw = (n_blocks * 6).div_ceil(64);
        let ow = off_bits.div_ceil(64);
        let payload_words = cw + ow + n_sup + words_for_u32s(n_sub);
        let payload = storage::slice(words, BLOCK_WORDS, payload_words)?;
        let consumed = (BLOCK_WORDS + payload_words).div_ceil(BLOCK_WORDS) * BLOCK_WORDS;
        if consumed > words.len() {
            return Err(StorageError("rrr padding truncated"));
        }
        Ok((
            Self {
                words: payload,
                off_off: cw,
                sup_off: cw + ow,
                sub_off: cw + ow + n_sup,
                len,
                ones,
                n_blocks,
                off_bits,
                n_sup,
            },
            consumed,
        ))
    }

    /// The pointer range of the borrowed payload words, for zero-copy
    /// assertions in tests.
    #[must_use]
    pub fn payload_ptr_range(&self) -> std::ops::Range<usize> {
        let start = self.words.as_ptr() as usize;
        start..start + std::mem::size_of_val(self.words)
    }

    /// Number of bits in the original vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the original vector was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Total number of clear bits.
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// The 6-bit class of block `b` (classes start at word 0).
    #[inline]
    fn class(&self, b: usize) -> usize {
        let pos = b * 6;
        let (word, bit) = (pos / 64, pos % 64);
        let lo = self.words[word] >> bit;
        let raw = if bit > 58 {
            lo | (self.words[word + 1] << (64 - bit))
        } else {
            lo
        };
        (raw & 0x3F) as usize
    }

    /// Reads `width ≤ 64` offset-stream bits starting at bit `pos`.
    #[inline]
    fn offset_bits(&self, pos: usize, width: u32) -> u64 {
        if width == 0 {
            return 0;
        }
        debug_assert!(pos + width as usize <= self.off_bits);
        let (word, bit) = (self.off_off + pos / 64, pos % 64);
        let lo = self.words[word] >> bit;
        let have = 64 - bit;
        let raw = if (width as usize) > have {
            lo | (self.words[word + 1] << have)
        } else {
            lo
        };
        if width == 64 {
            raw
        } else {
            raw & ((1u64 << width) - 1)
        }
    }

    /// Superblock `s` as `(ones_before, offset_stream_position)`.
    #[inline]
    fn sup_entry(&self, s: usize) -> (usize, usize) {
        let w = self.words[self.sup_off + s];
        ((w & 0xFFFF_FFFF) as usize, (w >> 32) as usize)
    }

    /// Packed sub-sample entry `j`.
    #[inline]
    fn sub_entry(&self, j: usize) -> u32 {
        (self.words[self.sub_off + j / 2] >> (32 * (j % 2))) as u32
    }

    /// Decodes the pattern of a block whose class is `k` and whose offset
    /// starts at bit `pos`, short-circuiting the cheap classes.
    #[inline]
    fn pattern_at(&self, pos: usize, k: usize) -> u64 {
        match k {
            0 => 0,
            // Offset of a one-bit block *is* the bit position (C(j,1) = j).
            1 => 1u64 << self.offset_bits(pos, 6),
            2 => class2_patterns()[self.offset_bits(pos, 11) as usize],
            BLOCK => (1u64 << BLOCK) - 1,
            _ => decode_offset(self.offset_bits(pos, offset_widths()[k]), k),
        }
    }

    /// Resolves `(bit value, ones strictly below bit)` inside the block
    /// whose class is `k` and whose offset starts at `pos` — the partial
    /// decode behind `get`/`rank1`/`access_rank1`.
    ///
    /// The combinatorial decode walks positions MSB → LSB, so it can stop
    /// as soon as it reaches `bit`: the yet-unplaced ones (`remaining`)
    /// are exactly the ones below it. Halves the decode work on average
    /// versus reconstructing the full 63-bit pattern, on top of the
    /// class fast paths.
    #[inline]
    fn block_access_rank(&self, pos: usize, k: usize, bit: usize) -> (bool, usize) {
        match k {
            0 => (false, 0),
            1 => {
                let p = self.offset_bits(pos, 6) as usize;
                (p == bit, usize::from(p < bit))
            }
            2 => {
                let pattern = class2_patterns()[self.offset_bits(pos, 11) as usize];
                let below = (pattern & ((1u64 << bit) - 1)).count_ones() as usize;
                ((pattern >> bit) & 1 == 1, below)
            }
            BLOCK => (true, bit),
            _ => {
                let mut offset = self.offset_bits(pos, offset_widths()[k]);
                let c = binomials();
                let mut remaining = k;
                let mut j = BLOCK;
                while remaining > 0 && j > bit {
                    j -= 1;
                    let skip = c[j][remaining];
                    if offset >= skip {
                        offset -= skip;
                        remaining -= 1;
                        if j == bit {
                            return (true, remaining);
                        }
                    } else if j == bit {
                        return (false, remaining);
                    }
                }
                // Either every one sits below `bit` (remaining of them) or
                // the scan ran out of ones before reaching it.
                (false, remaining)
            }
        }
    }

    /// Locates block `b` in the streams, returning `(ones_before_block,
    /// offset_position, class)`.
    ///
    /// Directory walk: one superblock entry, one packed sub-sample, then a
    /// scan of at most `SUB − 1 = 7` classes.
    #[inline]
    fn locate_block(&self, b: usize) -> (usize, usize, usize) {
        let widths = offset_widths();
        let s = b / SUPER;
        let (mut ones, mut pos) = self.sup_entry(s);
        let t = (b % SUPER) / SUB;
        if t > 0 {
            let entry = self.sub_entry(s * SUBS_PER_SUPER + t - 1) as usize;
            ones += entry >> 16;
            pos += entry & 0xFFFF;
        }
        for j in (s * SUPER + t * SUB)..b {
            let k = self.class(j);
            ones += k;
            pos += widths[k] as usize;
        }
        let k = self.class(b);
        (ones, pos, k)
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics in debug builds if `i >= len()`.
    /// Release builds elide the check on the packet path.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        let (_, pos, k) = self.locate_block(i / BLOCK);
        self.block_access_rank(pos, k, i % BLOCK).0
    }

    /// Number of set bits in `[0, i)`.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    pub fn rank1(&self, i: usize) -> usize {
        assert!(
            i <= self.len,
            "rank index {i} out of bounds (len {})",
            self.len
        );
        if i == self.len {
            return self.ones;
        }
        let (ones, pos, k) = self.locate_block(i / BLOCK);
        ones + self.block_access_rank(pos, k, i % BLOCK).1
    }

    /// Number of clear bits in `[0, i)`.
    #[must_use]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Fused `(get(i), rank1(i))` from a single block decode — the fast
    /// path for wavelet-tree descent and the XBW-b lookup loop, which
    /// always need the bit and its rank together.
    ///
    /// # Panics
    /// Panics in debug builds if `i >= len()`.
    /// Release builds elide the check on the packet path.
    #[must_use]
    #[inline]
    pub fn access_rank1(&self, i: usize) -> (bool, usize) {
        debug_assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        let (ones, pos, k) = self.locate_block(i / BLOCK);
        let (bit, below) = self.block_access_rank(pos, k, i % BLOCK);
        (bit, ones + below)
    }

    /// Position of the `q`-th set bit (`q ≥ 1`), or `None`.
    #[must_use]
    pub fn select1(&self, q: usize) -> Option<usize> {
        if q == 0 || q > self.ones {
            return None;
        }
        let target = q;
        let mut lo = 0usize;
        let mut hi = self.n_sup - 1;
        while lo + 1 < hi {
            let mid = usize::midpoint(lo, hi);
            if self.sup_entry(mid).0 < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let widths = offset_widths();
        let s = lo;
        let (sup_ones, sup_pos) = self.sup_entry(s);
        let mut remaining = target - sup_ones;
        let mut pos = sup_pos;
        let n_blocks = self.n_blocks;
        // Jump over whole sub-sample strides before scanning classes.
        let mut first = s * SUPER;
        for t in (1..=SUBS_PER_SUPER).rev() {
            if s * SUPER + t * SUB < n_blocks {
                let entry = self.sub_entry(s * SUBS_PER_SUPER + t - 1);
                let sub_ones = (entry >> 16) as usize;
                if sub_ones < remaining {
                    remaining -= sub_ones;
                    pos += (entry & 0xFFFF) as usize;
                    first = s * SUPER + t * SUB;
                    break;
                }
            }
        }
        for b in first..n_blocks.min((s + 1) * SUPER) {
            let k = self.class(b);
            if remaining <= k {
                let mut pattern = self.pattern_at(pos, k);
                for _ in 1..remaining {
                    pattern &= pattern - 1;
                }
                return Some(b * BLOCK + pattern.trailing_zeros() as usize);
            }
            remaining -= k;
            pos += widths[k] as usize;
        }
        unreachable!("select1: superblock directory inconsistent");
    }

    /// Position of the `q`-th clear bit (`q ≥ 1`), or `None`.
    #[must_use]
    pub fn select0(&self, q: usize) -> Option<usize> {
        if q == 0 || q > self.count_zeros() {
            return None;
        }
        let zeros_before = |s: usize| -> usize {
            let bits_before = (s * SUPER * BLOCK).min(self.len);
            bits_before - self.sup_entry(s).0
        };
        let mut lo = 0usize;
        let mut hi = self.n_sup - 1;
        while lo + 1 < hi {
            let mid = usize::midpoint(lo, hi);
            if zeros_before(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let widths = offset_widths();
        let s = lo;
        let mut remaining = q - zeros_before(s);
        let mut pos = self.sup_entry(s).1;
        let n_blocks = self.n_blocks;
        // Jump over whole sub-sample strides; blocks before a stored
        // sub-sample boundary are always full, so their zero count is
        // exactly `t·SUB·BLOCK − ones_within`.
        let mut first = s * SUPER;
        for t in (1..=SUBS_PER_SUPER).rev() {
            if s * SUPER + t * SUB < n_blocks {
                let entry = self.sub_entry(s * SUBS_PER_SUPER + t - 1);
                let sub_zeros = t * SUB * BLOCK - (entry >> 16) as usize;
                if sub_zeros < remaining {
                    remaining -= sub_zeros;
                    pos += (entry & 0xFFFF) as usize;
                    first = s * SUPER + t * SUB;
                    break;
                }
            }
        }
        for b in first..n_blocks.min((s + 1) * SUPER) {
            let k = self.class(b);
            let block_bits = (self.len - b * BLOCK).min(BLOCK);
            let zeros_here = block_bits - k;
            if remaining <= zeros_here {
                // Complement within the real (unpadded) width of this block;
                // block_bits ≤ 63 so the shift is always in range.
                let mask = (1u64 << block_bits) - 1;
                let mut pattern = !self.pattern_at(pos, k) & mask;
                for _ in 1..remaining {
                    pattern &= pattern - 1;
                }
                return Some(b * BLOCK + pattern.trailing_zeros() as usize);
            }
            remaining -= zeros_here;
            pos += widths[k] as usize;
        }
        unreachable!("select0: superblock directory inconsistent");
    }

    /// Footprint in bits (same accounting as [`RrrVec::size_bits`]).
    #[must_use]
    pub fn size_bits(&self) -> usize {
        let n_sub = self.n_blocks.div_ceil(SUB) - self.n_blocks.div_ceil(SUPER);
        (self.n_blocks * 6).div_ceil(64) * 64
            + self.off_bits.div_ceil(64) * 64
            + self.n_sup * 64
            + n_sub * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(pattern: impl Fn(usize) -> bool, n: usize) -> (Vec<bool>, RrrVec) {
        let bools: Vec<bool> = (0..n).map(pattern).collect();
        let rrr = RrrVec::new(&BitVec::from_bools(&bools));
        (bools, rrr)
    }

    #[test]
    fn offset_coding_roundtrips_every_popcount() {
        for k in 0..=BLOCK {
            // A deterministic pattern with exactly k ones.
            let pattern: u64 =
                if k == 0 { 0 } else { ((1u128 << k) - 1) as u64 } << (BLOCK - k).min(10);
            let off = encode_offset(pattern, k);
            assert_eq!(decode_offset(off, k), pattern, "class {k}");
            assert!(
                off < binomials()[BLOCK][k].max(1),
                "offset in range for class {k}"
            );
        }
    }

    #[test]
    fn offset_coding_roundtrips_pseudorandom_patterns() {
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pattern = x & ((1u64 << BLOCK) - 1);
            let k = pattern.count_ones() as usize;
            assert_eq!(decode_offset(encode_offset(pattern, k), k), pattern);
        }
    }

    #[test]
    fn short_class_fast_paths_agree_with_decode() {
        // Classes 0, 1, 2 and 63 take dedicated paths in pattern_at; pin
        // them against the combinatorial decoder through the public API.
        for k in [0usize, 1, 2, BLOCK] {
            let bools: Vec<bool> = (0..BLOCK)
                .map(|i| match k {
                    0 => false,
                    1 => i == 17,
                    2 => i == 3 || i == 60,
                    _ => true,
                })
                .collect();
            let (_, rrr) = build(|i| bools[i % BLOCK], BLOCK * 3);
            for i in 0..rrr.len() {
                assert_eq!(rrr.get(i), bools[i % BLOCK], "class {k}, get({i})");
            }
        }
    }

    #[test]
    fn access_matches_original() {
        let (bools, rrr) = build(|i| (i * i) % 7 < 3, 3000);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(rrr.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn rank_matches_naive() {
        let (bools, rrr) = build(|i| i % 11 == 0 || i % 4 == 1, 2500);
        let mut ones = 0;
        for i in 0..=2500 {
            if i < 2500 {
                assert_eq!(rrr.rank1(i), ones, "rank1({i})");
            }
            if i < bools.len() && bools[i] {
                ones += 1;
            }
        }
        assert_eq!(rrr.rank1(2500), ones);
        assert_eq!(rrr.count_ones(), ones);
    }

    #[test]
    fn access_rank1_fuses_get_and_rank() {
        let (bools, rrr) = build(|i| i % 7 == 0 || i % 5 == 2, 2500);
        let mut ones = 0;
        for (i, &b) in bools.iter().enumerate() {
            let (bit, rank) = rrr.access_rank1(i);
            assert_eq!(bit, b, "bit {i}");
            assert_eq!(rank, ones, "rank at {i}");
            ones += usize::from(b);
        }
    }

    #[test]
    fn select1_inverts_rank() {
        let (bools, rrr) = build(|i| i % 6 == 2, 1800);
        let mut q = 0;
        for (i, &b) in bools.iter().enumerate() {
            if b {
                q += 1;
                assert_eq!(rrr.select1(q), Some(i), "select1({q})");
            }
        }
        assert_eq!(rrr.select1(q + 1), None);
        assert_eq!(rrr.select1(0), None);
    }

    #[test]
    fn select0_inverts_rank0() {
        let (bools, rrr) = build(|i| i % 6 != 2, 1801);
        let mut q = 0;
        for (i, &b) in bools.iter().enumerate() {
            if !b {
                q += 1;
                assert_eq!(rrr.select0(q), Some(i), "select0({q})");
            }
        }
        assert_eq!(rrr.select0(q + 1), None);
    }

    #[test]
    fn select0_skips_padded_final_block() {
        // All ones, non-multiple of block size: the final block carries
        // phantom zero padding that select0 must not surface.
        let (_, rrr) = build(|_| true, BLOCK + 5);
        assert_eq!(rrr.count_zeros(), 0);
        assert_eq!(rrr.select0(1), None);
    }

    #[test]
    fn compresses_sparse_input_well_below_plain() {
        // 1% density: H0 ≈ 0.081 bits/bit. RRR(63) should land well under
        // 0.3 bits/bit including all directory overhead.
        let n = 100_000;
        let (_, rrr) = build(|i| i % 100 == 0, n);
        assert!(
            rrr.size_bits() < n * 3 / 10,
            "sparse RRR too large: {} bits for {n}",
            rrr.size_bits()
        );
    }

    #[test]
    fn dense_balanced_input_stays_near_raw_size() {
        // H0 = 1: RRR cannot beat n bits; overhead must stay under ~15%.
        let n = 100_000;
        let (bools, rrr) = build(|i| (i.wrapping_mul(2_654_435_761)) % 2 == 0, n);
        let ones = bools.iter().filter(|&&b| b).count();
        assert!(ones > n / 3 && ones < 2 * n / 3, "pattern not balanced");
        assert!(
            rrr.size_bits() < n * 115 / 100,
            "dense RRR too large: {}",
            rrr.size_bits()
        );
    }

    #[test]
    fn empty_and_tiny_vectors() {
        let (_, rrr) = build(|_| true, 0);
        assert_eq!(rrr.len(), 0);
        assert_eq!(rrr.rank1(0), 0);
        let (_, rrr) = build(|i| i == 0, 1);
        assert!(rrr.get(0));
        assert_eq!(rrr.rank1(1), 1);
        assert_eq!(rrr.select1(1), Some(0));
    }

    #[test]
    fn boundary_at_block_and_superblock_edges() {
        let (bools, rrr) = build(|i| i % 2 == 0, BLOCK * SUPER * 3 + 7);
        for i in [
            BLOCK - 1,
            BLOCK,
            BLOCK + 1,
            BLOCK * SUB - 1,
            BLOCK * SUB,
            BLOCK * SUB + 1,
            BLOCK * SUB * 2,
            BLOCK * SUB * 3 + 5,
            BLOCK * SUPER - 1,
            BLOCK * SUPER,
            BLOCK * SUPER + 1,
            BLOCK * SUPER * 2,
            bools.len() - 1,
        ] {
            assert_eq!(rrr.get(i), bools[i], "get({i})");
            let naive = bools[..i].iter().filter(|&&b| b).count();
            assert_eq!(rrr.rank1(i), naive, "rank1({i})");
        }
    }

    #[test]
    fn serialized_view_answers_identically_and_borrows() {
        let (bools, rrr) = build(|i| i % 9 == 0 || i % 5 == 2, BLOCK * SUPER * 2 + 17);
        let mut words = Vec::new();
        rrr.write_words(&mut words);
        assert_eq!(words.len() % BLOCK_WORDS, 0);
        let arena = Arena::from_words(&words);
        let (view, consumed) = RrrVecRef::from_words(arena.words()).unwrap();
        assert_eq!(consumed, words.len());
        let arena_range = arena.words().as_ptr_range();
        let pr = view.payload_ptr_range();
        assert!(pr.start >= arena_range.start as usize && pr.end <= arena_range.end as usize);
        for i in (0..bools.len()).step_by(11) {
            assert_eq!(view.get(i), bools[i], "get({i})");
            assert_eq!(view.access_rank1(i), rrr.access_rank1(i), "fused({i})");
        }
        for q in (1..=view.count_ones()).step_by(97) {
            assert_eq!(view.select1(q), rrr.select1(q));
        }
        for q in (1..=view.count_zeros()).step_by(97) {
            assert_eq!(view.select0(q), rrr.select0(q));
        }
        assert_eq!(view.size_bits(), rrr.size_bits());
    }

    #[test]
    fn from_words_rejects_corrupt_meta() {
        let (_, rrr) = build(|i| i % 4 == 1, 4000);
        let mut words = Vec::new();
        rrr.write_words(&mut words);
        for cut in [0usize, 3, 8, words.len() - 8] {
            assert!(RrrVecRef::from_words(&words[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = words.clone();
        bad[1] = bad[0] + 1; // ones > len
        assert!(RrrVecRef::from_words(&bad).is_err());
        let mut bad = words;
        bad[0] = u64::from(u32::MAX); // len past the supported ceiling
        assert!(RrrVecRef::from_words(&bad).is_err());
    }

    #[test]
    fn binomial_table_sanity() {
        let c = binomials();
        assert_eq!(c[63][0], 1);
        assert_eq!(c[63][1], 63);
        assert_eq!(c[63][63], 1);
        assert_eq!(c[4][2], 6);
        // C(63,31) is the largest entry and must not have overflowed.
        assert_eq!(c[63][31], 916_312_070_471_295_267);
    }

    #[test]
    fn class2_table_is_a_bijection() {
        let t = class2_patterns();
        assert_eq!(t.len(), 1953);
        for (off, &p) in t.iter().enumerate() {
            assert_eq!(p.count_ones(), 2, "offset {off}");
            assert_eq!(encode_offset(p, 2), off as u64);
        }
    }
}
