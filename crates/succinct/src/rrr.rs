//! RRR compressed bit vector (Raman–Raman–Rao, SODA 2002).
//!
//! The bit string is split into 63-bit blocks. Each block is stored as a
//! *class* (its popcount, 6 bits) plus an *offset* (the block's index among
//! all 63-bit words of that popcount, `⌈lg C(63,k)⌉` bits), encoded with the
//! combinatorial number system. Low- and high-popcount blocks get short
//! offsets, so the total is `n·H0 + o(n)` bits: this is the structure
//! Lemma 2/3 of the paper uses to store the trie shape string `S_I` of
//! XBW-b. A two-level directory provides `rank`/`access` with a tightly
//! bounded scan: one superblock entry (rank count + offset-stream position
//! every 32 blocks, as two `u32`s) plus a packed sub-sample every 8 blocks,
//! so a query scans at most 7 six-bit classes before decoding its block.
//! Classes 0, 1, 2 and 63 skip the 63-step combinatorial decode entirely
//! (zero/full blocks read nothing, near-empty blocks are resolved from the
//! offset directly or a table).

use std::sync::OnceLock;

use crate::bits::BitVec;
use crate::intvec::IntVec;

/// Bits per RRR block. 63 keeps every offset and every binomial in a `u64`.
const BLOCK: usize = 63;
/// Blocks per superblock.
const SUPER: usize = 32;
/// Blocks per sub-sample within a superblock.
const SUB: usize = 8;
/// Sub-samples stored per (full) superblock: before blocks 8, 16 and 24.
const SUBS_PER_SUPER: usize = SUPER / SUB - 1;

/// Pascal's triangle up to C(63, k), in `u64`.
fn binomials() -> &'static [[u64; BLOCK + 1]; BLOCK + 1] {
    static TABLE: OnceLock<[[u64; BLOCK + 1]; BLOCK + 1]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut c = [[0u64; BLOCK + 1]; BLOCK + 1];
        for n in 0..=BLOCK {
            c[n][0] = 1;
            for k in 1..=n {
                c[n][k] = c[n - 1][k - 1] + if k < n { c[n - 1][k] } else { 0 };
            }
        }
        c
    })
}

/// Offset widths `⌈lg C(63,k)⌉` per class.
fn offset_widths() -> &'static [u32; BLOCK + 1] {
    static WIDTHS: OnceLock<[u32; BLOCK + 1]> = OnceLock::new();
    WIDTHS.get_or_init(|| {
        let c = binomials();
        let mut w = [0u32; BLOCK + 1];
        for (k, entry) in w.iter_mut().enumerate() {
            *entry = crate::ceil_log2(c[BLOCK][k]);
        }
        w
    })
}

/// Offset → pattern table for class 2 (C(63,2) = 1953 entries): two-bit
/// blocks are common in trie shape strings, and the table turns their
/// 63-step decode into one load.
fn class2_patterns() -> &'static Vec<u64> {
    static TABLE: OnceLock<Vec<u64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let n = binomials()[BLOCK][2] as usize;
        let mut t = vec![0u64; n];
        for hi in 1..BLOCK {
            for lo in 0..hi {
                let pattern = (1u64 << hi) | (1u64 << lo);
                t[encode_offset(pattern, 2) as usize] = pattern;
            }
        }
        t
    })
}

/// Ranks `pattern` (LSB-first, `k = popcount`) in the lexicographic order of
/// all 63-bit patterns with that popcount, via the combinatorial number
/// system: scanning positions MSB → LSB, a set bit at position `j` skips the
/// `C(j, k_remaining)` patterns that have a clear bit there.
#[inline]
fn encode_offset(pattern: u64, k: usize) -> u64 {
    let c = binomials();
    let mut offset = 0u64;
    let mut remaining = k;
    let mut j = BLOCK;
    while remaining > 0 {
        j -= 1;
        if (pattern >> j) & 1 == 1 {
            offset += c[j][remaining];
            remaining -= 1;
        }
    }
    offset
}

/// Inverse of [`encode_offset`].
#[inline]
fn decode_offset(mut offset: u64, k: usize) -> u64 {
    let c = binomials();
    let mut pattern = 0u64;
    let mut remaining = k;
    let mut j = BLOCK;
    while remaining > 0 {
        j -= 1;
        let skip = c[j][remaining];
        if offset >= skip {
            offset -= skip;
            pattern |= 1u64 << j;
            remaining -= 1;
        }
    }
    pattern
}

/// An immutable, entropy-compressed bit vector with constant-time `rank`
/// and `access` and O(log n) `select`.
#[derive(Clone, Debug)]
pub struct RrrVec {
    /// 6-bit class (popcount) of each block.
    classes: IntVec,
    /// Concatenated variable-width offsets.
    offsets: BitVec,
    /// Per superblock: ones strictly before it, and the bit position in
    /// `offsets` where it starts. `u32` suffices for both at FIB scale and
    /// halves the directory overhead.
    sup: Vec<(u32, u32)>,
    /// Per superblock, up to three packed sub-samples (before blocks 8, 16
    /// and 24 of the superblock): `ones_within << 16 | offset_bits_within`,
    /// both < 2016 so a `u32` holds the pair. Bounds the class scan of any
    /// query to < [`SUB`] blocks.
    sub: Vec<u32>,
    len: usize,
    ones: usize,
}

impl RrrVec {
    /// Compresses `bits`.
    ///
    /// # Panics
    /// Panics if `bits` exceeds `u32::MAX` bits — far beyond any FIB.
    #[must_use]
    pub fn new(bits: &BitVec) -> Self {
        assert!(
            bits.len() < u32::MAX as usize,
            "RrrVec limited to 2^32 bits"
        );
        let widths = offset_widths();
        let n_blocks = bits.len().div_ceil(BLOCK);
        let mut classes = IntVec::new(6);
        let mut offsets = BitVec::new();
        let mut sup = Vec::with_capacity(n_blocks / SUPER + 2);
        let mut sub = Vec::with_capacity(n_blocks / SUB + 1);
        let mut ones: u64 = 0;
        let (mut sup_ones, mut sup_pos) = (0u64, 0usize);
        for b in 0..n_blocks {
            if b % SUPER == 0 {
                sup.push((ones as u32, offsets.len() as u32));
                (sup_ones, sup_pos) = (ones, offsets.len());
            } else if b % SUB == 0 {
                sub.push((((ones - sup_ones) as u32) << 16) | (offsets.len() - sup_pos) as u32);
            }
            let start = b * BLOCK;
            let width = (bits.len() - start).min(BLOCK) as u32;
            // Final block is implicitly padded with zeros.
            let pattern = bits.get_bits(start, width);
            let k = pattern.count_ones() as usize;
            classes.push(k as u64);
            offsets.push_bits(encode_offset(pattern, k), widths[k]);
            ones += k as u64;
        }
        // Sentinel superblock simplifies select's binary search.
        sup.push((ones as u32, offsets.len() as u32));
        Self {
            classes,
            offsets,
            sup,
            sub,
            len: bits.len(),
            ones: ones as usize,
        }
    }

    /// Number of bits in the original vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the original vector was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Total number of clear bits.
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// Decodes the pattern of a block whose class is `k` and whose offset
    /// starts at bit `pos`, short-circuiting the cheap classes.
    #[inline]
    fn pattern_at(&self, pos: usize, k: usize) -> u64 {
        match k {
            0 => 0,
            // Offset of a one-bit block *is* the bit position (C(j,1) = j).
            1 => 1u64 << self.offsets.get_bits(pos, 6),
            2 => class2_patterns()[self.offsets.get_bits(pos, 11) as usize],
            BLOCK => (1u64 << BLOCK) - 1,
            _ => decode_offset(self.offsets.get_bits(pos, offset_widths()[k]), k),
        }
    }

    /// Resolves `(bit value, ones strictly below bit)` inside the block
    /// whose class is `k` and whose offset starts at `pos` — the partial
    /// decode behind `get`/`rank1`/`access_rank1`.
    ///
    /// The combinatorial decode walks positions MSB → LSB, so it can stop
    /// as soon as it reaches `bit`: the yet-unplaced ones (`remaining`)
    /// are exactly the ones below it. Halves the decode work on average
    /// versus reconstructing the full 63-bit pattern, on top of the
    /// class fast paths.
    #[inline]
    fn block_access_rank(&self, pos: usize, k: usize, bit: usize) -> (bool, usize) {
        match k {
            0 => (false, 0),
            1 => {
                let p = self.offsets.get_bits(pos, 6) as usize;
                (p == bit, usize::from(p < bit))
            }
            2 => {
                let pattern = class2_patterns()[self.offsets.get_bits(pos, 11) as usize];
                let below = (pattern & ((1u64 << bit) - 1)).count_ones() as usize;
                ((pattern >> bit) & 1 == 1, below)
            }
            BLOCK => (true, bit),
            _ => {
                let mut offset = self.offsets.get_bits(pos, offset_widths()[k]);
                let c = binomials();
                let mut remaining = k;
                let mut j = BLOCK;
                while remaining > 0 && j > bit {
                    j -= 1;
                    let skip = c[j][remaining];
                    if offset >= skip {
                        offset -= skip;
                        remaining -= 1;
                        if j == bit {
                            return (true, remaining);
                        }
                    } else if j == bit {
                        return (false, remaining);
                    }
                }
                // Either every one sits below `bit` (remaining of them) or
                // the scan ran out of ones before reaching it.
                (false, remaining)
            }
        }
    }

    /// Locates block `b` in the streams, returning `(ones_before_block,
    /// offset_position, class)`.
    ///
    /// Directory walk: one superblock entry, one packed sub-sample, then a
    /// scan of at most `SUB − 1 = 7` classes.
    #[inline]
    fn locate_block(&self, b: usize) -> (usize, usize, usize) {
        let widths = offset_widths();
        let s = b / SUPER;
        let (mut ones, mut pos) = (self.sup[s].0 as usize, self.sup[s].1 as usize);
        let t = (b % SUPER) / SUB;
        if t > 0 {
            let entry = self.sub[s * SUBS_PER_SUPER + t - 1] as usize;
            ones += entry >> 16;
            pos += entry & 0xFFFF;
        }
        for j in (s * SUPER + t * SUB)..b {
            let k = self.classes.get(j) as usize;
            ones += k;
            pos += widths[k] as usize;
        }
        let k = self.classes.get(b) as usize;
        (ones, pos, k)
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        let (_, pos, k) = self.locate_block(i / BLOCK);
        self.block_access_rank(pos, k, i % BLOCK).0
    }

    /// Number of set bits in `[0, i)`.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    pub fn rank1(&self, i: usize) -> usize {
        assert!(
            i <= self.len,
            "rank index {i} out of bounds (len {})",
            self.len
        );
        if i == self.len {
            return self.ones;
        }
        let (ones, pos, k) = self.locate_block(i / BLOCK);
        ones + self.block_access_rank(pos, k, i % BLOCK).1
    }

    /// Number of clear bits in `[0, i)`.
    #[must_use]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Fused `(get(i), rank1(i))` from a single block decode — the fast
    /// path for wavelet-tree descent and the XBW-b lookup loop, which
    /// always need the bit and its rank together.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    #[inline]
    pub fn access_rank1(&self, i: usize) -> (bool, usize) {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        let (ones, pos, k) = self.locate_block(i / BLOCK);
        let (bit, below) = self.block_access_rank(pos, k, i % BLOCK);
        (bit, ones + below)
    }

    /// Position of the `q`-th set bit (`q ≥ 1`), or `None`.
    #[must_use]
    pub fn select1(&self, q: usize) -> Option<usize> {
        if q == 0 || q > self.ones {
            return None;
        }
        let target = q as u32;
        let mut lo = 0usize;
        let mut hi = self.sup.len() - 1;
        while lo + 1 < hi {
            let mid = usize::midpoint(lo, hi);
            if self.sup[mid].0 < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let widths = offset_widths();
        let s = lo;
        let mut remaining = (target - self.sup[s].0) as usize;
        let mut pos = self.sup[s].1 as usize;
        let n_blocks = self.classes.len();
        // Jump over whole sub-sample strides before scanning classes.
        let mut first = s * SUPER;
        for t in (1..=SUBS_PER_SUPER).rev() {
            if s * SUPER + t * SUB < n_blocks {
                let entry = self.sub[s * SUBS_PER_SUPER + t - 1];
                let sub_ones = (entry >> 16) as usize;
                if sub_ones < remaining {
                    remaining -= sub_ones;
                    pos += (entry & 0xFFFF) as usize;
                    first = s * SUPER + t * SUB;
                    break;
                }
            }
        }
        for b in first..n_blocks.min((s + 1) * SUPER) {
            let k = self.classes.get(b) as usize;
            if remaining <= k {
                let mut pattern = self.pattern_at(pos, k);
                for _ in 1..remaining {
                    pattern &= pattern - 1;
                }
                return Some(b * BLOCK + pattern.trailing_zeros() as usize);
            }
            remaining -= k;
            pos += widths[k] as usize;
        }
        unreachable!("select1: superblock directory inconsistent");
    }

    /// Position of the `q`-th clear bit (`q ≥ 1`), or `None`.
    #[must_use]
    pub fn select0(&self, q: usize) -> Option<usize> {
        if q == 0 || q > self.count_zeros() {
            return None;
        }
        let zeros_before = |s: usize| -> usize {
            let bits_before = (s * SUPER * BLOCK).min(self.len);
            bits_before - self.sup[s].0 as usize
        };
        let mut lo = 0usize;
        let mut hi = self.sup.len() - 1;
        while lo + 1 < hi {
            let mid = usize::midpoint(lo, hi);
            if zeros_before(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let widths = offset_widths();
        let s = lo;
        let mut remaining = q - zeros_before(s);
        let mut pos = self.sup[s].1 as usize;
        let n_blocks = self.classes.len();
        // Jump over whole sub-sample strides; blocks before a stored
        // sub-sample boundary are always full, so their zero count is
        // exactly `t·SUB·BLOCK − ones_within`.
        let mut first = s * SUPER;
        for t in (1..=SUBS_PER_SUPER).rev() {
            if s * SUPER + t * SUB < n_blocks {
                let entry = self.sub[s * SUBS_PER_SUPER + t - 1];
                let sub_zeros = t * SUB * BLOCK - (entry >> 16) as usize;
                if sub_zeros < remaining {
                    remaining -= sub_zeros;
                    pos += (entry & 0xFFFF) as usize;
                    first = s * SUPER + t * SUB;
                    break;
                }
            }
        }
        for b in first..n_blocks.min((s + 1) * SUPER) {
            let k = self.classes.get(b) as usize;
            let block_bits = (self.len - b * BLOCK).min(BLOCK);
            let zeros_here = block_bits - k;
            if remaining <= zeros_here {
                // Complement within the real (unpadded) width of this block;
                // block_bits ≤ 63 so the shift is always in range.
                let mask = (1u64 << block_bits) - 1;
                let mut pattern = !self.pattern_at(pos, k) & mask;
                for _ in 1..remaining {
                    pattern &= pattern - 1;
                }
                return Some(b * BLOCK + pattern.trailing_zeros() as usize);
            }
            remaining -= zeros_here;
            pos += widths[k] as usize;
        }
        unreachable!("select0: superblock directory inconsistent");
    }

    /// Footprint in bits: classes, offsets and both directory levels.
    /// The universal binomial and class-2 tables (constant, shared per
    /// process) are excluded, as is conventional.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.classes.size_bits()
            + self.offsets.size_bits()
            + self.sup.len() * 64
            + self.sub.len() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(pattern: impl Fn(usize) -> bool, n: usize) -> (Vec<bool>, RrrVec) {
        let bools: Vec<bool> = (0..n).map(pattern).collect();
        let rrr = RrrVec::new(&BitVec::from_bools(&bools));
        (bools, rrr)
    }

    #[test]
    fn offset_coding_roundtrips_every_popcount() {
        for k in 0..=BLOCK {
            // A deterministic pattern with exactly k ones.
            let pattern: u64 =
                if k == 0 { 0 } else { ((1u128 << k) - 1) as u64 } << (BLOCK - k).min(10);
            let off = encode_offset(pattern, k);
            assert_eq!(decode_offset(off, k), pattern, "class {k}");
            assert!(
                off < binomials()[BLOCK][k].max(1),
                "offset in range for class {k}"
            );
        }
    }

    #[test]
    fn offset_coding_roundtrips_pseudorandom_patterns() {
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pattern = x & ((1u64 << BLOCK) - 1);
            let k = pattern.count_ones() as usize;
            assert_eq!(decode_offset(encode_offset(pattern, k), k), pattern);
        }
    }

    #[test]
    fn short_class_fast_paths_agree_with_decode() {
        // Classes 0, 1, 2 and 63 take dedicated paths in pattern_at; pin
        // them against the combinatorial decoder through the public API.
        for k in [0usize, 1, 2, BLOCK] {
            let bools: Vec<bool> = (0..BLOCK)
                .map(|i| match k {
                    0 => false,
                    1 => i == 17,
                    2 => i == 3 || i == 60,
                    _ => true,
                })
                .collect();
            let (_, rrr) = build(|i| bools[i % BLOCK], BLOCK * 3);
            for i in 0..rrr.len() {
                assert_eq!(rrr.get(i), bools[i % BLOCK], "class {k}, get({i})");
            }
        }
    }

    #[test]
    fn access_matches_original() {
        let (bools, rrr) = build(|i| (i * i) % 7 < 3, 3000);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(rrr.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn rank_matches_naive() {
        let (bools, rrr) = build(|i| i % 11 == 0 || i % 4 == 1, 2500);
        let mut ones = 0;
        for i in 0..=2500 {
            if i < 2500 {
                assert_eq!(rrr.rank1(i), ones, "rank1({i})");
            }
            if i < bools.len() && bools[i] {
                ones += 1;
            }
        }
        assert_eq!(rrr.rank1(2500), ones);
        assert_eq!(rrr.count_ones(), ones);
    }

    #[test]
    fn access_rank1_fuses_get_and_rank() {
        let (bools, rrr) = build(|i| i % 7 == 0 || i % 5 == 2, 2500);
        let mut ones = 0;
        for (i, &b) in bools.iter().enumerate() {
            let (bit, rank) = rrr.access_rank1(i);
            assert_eq!(bit, b, "bit {i}");
            assert_eq!(rank, ones, "rank at {i}");
            ones += usize::from(b);
        }
    }

    #[test]
    fn select1_inverts_rank() {
        let (bools, rrr) = build(|i| i % 6 == 2, 1800);
        let mut q = 0;
        for (i, &b) in bools.iter().enumerate() {
            if b {
                q += 1;
                assert_eq!(rrr.select1(q), Some(i), "select1({q})");
            }
        }
        assert_eq!(rrr.select1(q + 1), None);
        assert_eq!(rrr.select1(0), None);
    }

    #[test]
    fn select0_inverts_rank0() {
        let (bools, rrr) = build(|i| i % 6 != 2, 1801);
        let mut q = 0;
        for (i, &b) in bools.iter().enumerate() {
            if !b {
                q += 1;
                assert_eq!(rrr.select0(q), Some(i), "select0({q})");
            }
        }
        assert_eq!(rrr.select0(q + 1), None);
    }

    #[test]
    fn select0_skips_padded_final_block() {
        // All ones, non-multiple of block size: the final block carries
        // phantom zero padding that select0 must not surface.
        let (_, rrr) = build(|_| true, BLOCK + 5);
        assert_eq!(rrr.count_zeros(), 0);
        assert_eq!(rrr.select0(1), None);
    }

    #[test]
    fn compresses_sparse_input_well_below_plain() {
        // 1% density: H0 ≈ 0.081 bits/bit. RRR(63) should land well under
        // 0.3 bits/bit including all directory overhead.
        let n = 100_000;
        let (_, rrr) = build(|i| i % 100 == 0, n);
        assert!(
            rrr.size_bits() < n * 3 / 10,
            "sparse RRR too large: {} bits for {n}",
            rrr.size_bits()
        );
    }

    #[test]
    fn dense_balanced_input_stays_near_raw_size() {
        // H0 = 1: RRR cannot beat n bits; overhead must stay under ~15%.
        let n = 100_000;
        let (bools, rrr) = build(|i| (i.wrapping_mul(2_654_435_761)) % 2 == 0, n);
        let ones = bools.iter().filter(|&&b| b).count();
        assert!(ones > n / 3 && ones < 2 * n / 3, "pattern not balanced");
        assert!(
            rrr.size_bits() < n * 115 / 100,
            "dense RRR too large: {}",
            rrr.size_bits()
        );
    }

    #[test]
    fn empty_and_tiny_vectors() {
        let (_, rrr) = build(|_| true, 0);
        assert_eq!(rrr.len(), 0);
        assert_eq!(rrr.rank1(0), 0);
        let (_, rrr) = build(|i| i == 0, 1);
        assert!(rrr.get(0));
        assert_eq!(rrr.rank1(1), 1);
        assert_eq!(rrr.select1(1), Some(0));
    }

    #[test]
    fn boundary_at_block_and_superblock_edges() {
        let (bools, rrr) = build(|i| i % 2 == 0, BLOCK * SUPER * 3 + 7);
        for i in [
            BLOCK - 1,
            BLOCK,
            BLOCK + 1,
            BLOCK * SUB - 1,
            BLOCK * SUB,
            BLOCK * SUB + 1,
            BLOCK * SUB * 2,
            BLOCK * SUB * 3 + 5,
            BLOCK * SUPER - 1,
            BLOCK * SUPER,
            BLOCK * SUPER + 1,
            BLOCK * SUPER * 2,
            bools.len() - 1,
        ] {
            assert_eq!(rrr.get(i), bools[i], "get({i})");
            let naive = bools[..i].iter().filter(|&&b| b).count();
            assert_eq!(rrr.rank1(i), naive, "rank1({i})");
        }
    }

    #[test]
    fn binomial_table_sanity() {
        let c = binomials();
        assert_eq!(c[63][0], 1);
        assert_eq!(c[63][1], 63);
        assert_eq!(c[63][63], 1);
        assert_eq!(c[4][2], 6);
        // C(63,31) is the largest entry and must not have overflowed.
        assert_eq!(c[63][31], 916_312_070_471_295_267);
    }

    #[test]
    fn class2_table_is_a_bijection() {
        let t = class2_patterns();
        assert_eq!(t.len(), 1953);
        for (off, &p) in t.iter().enumerate() {
            assert_eq!(p.count_ones(), 2, "offset {off}");
            assert_eq!(encode_offset(p, 2), off as u64);
        }
    }
}
