//! Aligned word arenas and the zero-copy storage conventions shared by
//! every succinct structure in this crate.
//!
//! The FIB-image pipeline treats a compressed FIB as what the paper says
//! it is: a flat string of bits. To serve lookups straight out of a loaded
//! byte buffer, every query structure here follows one storage discipline:
//!
//! * the structure's backing words live in **one contiguous `u64` run**
//!   whose first word sits on a **64-byte boundary** (an [`Arena`]), so
//!   cache-line-granular layouts like [`crate::RsBitVec`]'s interleaved
//!   rank lines keep their one-line-per-query guarantee when the words
//!   come from a file instead of a `Vec`;
//! * each structure splits into an **owned builder** (the existing
//!   `RsBitVec`, `RrrVec`, … types, which construct and then freeze their
//!   words into an arena) and a **borrowed view** (`RsBitVecRef`,
//!   `RrrVecRef`, …) holding only `&[u64]` slices plus a few scalars. All
//!   query code lives on the views; the owned types forward, so the hot
//!   paths are byte-for-byte identical over owned and loaded memory;
//! * a structure serializes as an 8-word (64-byte) **meta block** followed
//!   by its payload words at stable offsets, and parses back with
//!   [`Result`]-typed validation — no panics on hostile bytes. As long as
//!   the serialized run starts on a 64-byte boundary, so does every
//!   payload section inside it (`write_words` pads to whole meta blocks).
//!
//! The arena is built without `unsafe`: it over-allocates a plain
//! `Vec<u64>` by one alignment block and starts the logical words at the
//! first 64-byte boundary inside the allocation (computed with
//! `pointer::align_offset`).

use std::fmt;

/// Words per 64-byte alignment block.
pub const BLOCK_WORDS: usize = 8;

/// Error validating serialized storage metadata.
///
/// Carried by every `*Ref::from_words` parser in this crate; the FIB image
/// loader surfaces it as a typed load failure instead of a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageError(pub &'static str);

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid storage section: {}", self.0)
    }
}

impl std::error::Error for StorageError {}

/// An immutable, 64-byte-aligned run of `u64` words.
///
/// This is the owned backing store of the frozen succinct structures and
/// of loaded FIB images. The buffer over-allocates by one block and
/// exposes its logical words starting at the first 64-byte boundary, so
/// `words()[0]` — and therefore every offset that is a multiple of
/// [`BLOCK_WORDS`] — sits on a cache-line boundary.
#[derive(Debug, Default)]
pub struct Arena {
    buf: Vec<u64>,
    start: usize,
    len: usize,
}

impl Arena {
    /// Freezes `words` into an aligned arena (one copy).
    #[must_use]
    pub fn from_words(words: &[u64]) -> Self {
        let mut buf = vec![0u64; words.len() + BLOCK_WORDS]; // fibcheck: allow(hot-path): one-shot arena freeze at build/load time, not per-lookup
                                                             // align_offset is in u64 elements; the Vec is 8-byte aligned, so
                                                             // the 64-byte boundary is at most 7 words in.
        let start = buf.as_ptr().align_offset(64);
        debug_assert!(start < BLOCK_WORDS);
        buf[start..start + words.len()].copy_from_slice(words);
        Self {
            buf,
            start,
            len: words.len(),
        }
    }

    /// Decodes little-endian bytes into an aligned arena (the single copy
    /// a file load performs; everything downstream borrows).
    ///
    /// # Errors
    /// [`StorageError`] if `bytes` is not a whole number of words.
    pub fn from_le_bytes(bytes: &[u8]) -> Result<Self, StorageError> {
        if bytes.len() % 8 != 0 {
            return Err(StorageError("byte length not a multiple of 8"));
        }
        let n = bytes.len() / 8;
        let mut buf = vec![0u64; n + BLOCK_WORDS];
        let start = buf.as_ptr().align_offset(64);
        debug_assert!(start < BLOCK_WORDS);
        for (dst, chunk) in buf[start..start + n].iter_mut().zip(bytes.chunks_exact(8)) {
            *dst = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Ok(Self { buf, start, len: n })
    }

    /// The aligned words.
    #[must_use]
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.buf[self.start..self.start + self.len]
    }

    /// Number of logical words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no words.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Size of one transparent huge page on x86-64 Linux.
pub const HUGEPAGE_BYTES: usize = 2 << 20;

impl Arena {
    /// Advises the kernel to back this arena's allocation with
    /// transparent huge pages (`madvise(MADV_HUGEPAGE)`).
    ///
    /// Large loaded FIB images walk their sections with data-dependent
    /// strides; 4 KiB pages then burn TLB entries faster than cache
    /// lines. A 2 MiB-backed arena covers a whole mid-size engine with a
    /// handful of TLB entries.
    ///
    /// Purely advisory with graceful fallback: returns `true` only when
    /// the kernel accepted the hint for at least one whole huge page.
    /// Returns `false` — with the arena fully usable either way — when
    /// the arena spans less than one aligned huge page, on non-Linux /
    /// non-x86-64 targets, or when the kernel rejects the advice (e.g.
    /// THP compiled out). Contents are never affected.
    pub fn advise_hugepages(&self) -> bool {
        let bytes = self.len * 8;
        if bytes < HUGEPAGE_BYTES {
            return false;
        }
        let addr = self.words().as_ptr() as usize;
        // madvise demands page alignment; advise the whole pages inside
        // the span (the Vec allocation is rarely page-aligned itself).
        const PAGE: usize = 4096;
        let lo = addr.div_ceil(PAGE) * PAGE;
        let hi = (addr + bytes) / PAGE * PAGE;
        if hi <= lo || hi - lo < HUGEPAGE_BYTES {
            return false;
        }
        madvise_hugepage(lo, hi - lo)
    }
}

/// Issues `madvise(addr, len, MADV_HUGEPAGE)` via a raw syscall (the
/// workspace links no libc crate). Returns whether the kernel accepted.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[allow(unsafe_code)]
fn madvise_hugepage(addr: usize, len: usize) -> bool {
    const SYS_MADVISE: usize = 28;
    const MADV_HUGEPAGE: usize = 14;
    let ret: isize;
    // SAFETY: madvise(MADV_HUGEPAGE) is advisory metadata on VMAs we own
    // via the live Vec allocation behind `addr..addr+len`: it never
    // reads, writes, unmaps, or otherwise invalidates the memory, and on
    // failure (unsupported kernel, THP disabled) it only returns an
    // error code. The asm clobbers exactly what the x86-64 syscall ABI
    // clobbers (rax, rcx, r11).
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MADVISE as isize => ret,
            in("rdi") addr,
            in("rsi") len,
            in("rdx") MADV_HUGEPAGE,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn madvise_hugepage(_addr: usize, _len: usize) -> bool {
    false
}

impl Clone for Arena {
    /// Re-freezes the words: the clone computes its own alignment start
    /// for its own allocation.
    fn clone(&self) -> Self {
        Self::from_words(self.words())
    }
}

impl PartialEq for Arena {
    fn eq(&self, other: &Self) -> bool {
        self.words() == other.words()
    }
}

impl Eq for Arena {}

/// Pads `words` with zeros up to the next 64-byte (8-word) boundary.
pub fn pad_to_block(words: &mut Vec<u64>) {
    while words.len() % BLOCK_WORDS != 0 {
        words.push(0);
    }
}

/// Number of words needed to hold `n` packed `u32` values (two per word).
#[must_use]
pub fn words_for_u32s(n: usize) -> usize {
    n.div_ceil(2)
}

/// Appends `values` packed two-per-word, little end first, then returns
/// the number of words written.
pub fn push_u32s(words: &mut Vec<u64>, values: impl IntoIterator<Item = u32>) -> usize {
    let before = words.len();
    let mut pending: Option<u32> = None;
    for v in values {
        match pending.take() {
            None => pending = Some(v),
            Some(lo) => words.push(u64::from(lo) | (u64::from(v) << 32)),
        }
    }
    if let Some(lo) = pending {
        words.push(u64::from(lo));
    }
    words.len() - before
}

/// Reads the `j`-th packed `u32` from a word run written by [`push_u32s`].
#[must_use]
#[inline]
pub fn get_u32(words: &[u64], j: usize) -> u32 {
    (words[j / 2] >> (32 * (j % 2))) as u32
}

/// Checked sub-slice: `words[offset..offset + len]` or a typed error.
///
/// # Errors
/// [`StorageError`] if the range exceeds `words`.
#[inline]
pub fn slice(words: &[u64], offset: usize, len: usize) -> Result<&[u64], StorageError> {
    words
        .get(offset..offset.checked_add(len).ok_or(OVERFLOW)?)
        .ok_or(StorageError("section range out of bounds"))
}

const OVERFLOW: StorageError = StorageError("section range overflows");

/// Converts a `u64` read from a meta block into a `usize`, rejecting
/// values that do not fit the platform.
///
/// # Errors
/// [`StorageError`] if `v` exceeds `usize::MAX`.
#[inline]
pub fn meta_usize(v: u64) -> Result<usize, StorageError> {
    usize::try_from(v).map_err(|_| StorageError("metadata value exceeds usize"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_is_64_byte_aligned() {
        for n in [0usize, 1, 7, 8, 9, 1000] {
            let words: Vec<u64> = (0..n as u64).collect();
            let arena = Arena::from_words(&words);
            assert_eq!(arena.words(), &words[..]);
            if n > 0 {
                assert_eq!(arena.words().as_ptr() as usize % 64, 0, "n = {n}");
            }
        }
    }

    #[test]
    fn arena_clone_stays_aligned_and_equal() {
        let words: Vec<u64> = (0..100u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let arena = Arena::from_words(&words);
        let clone = arena.clone();
        assert_eq!(arena, clone);
        assert_eq!(clone.words().as_ptr() as usize % 64, 0);
    }

    #[test]
    fn le_bytes_roundtrip() {
        let words: Vec<u64> = vec![0x0102_0304_0506_0708, u64::MAX, 0];
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let arena = Arena::from_le_bytes(&bytes).unwrap();
        assert_eq!(arena.words(), &words[..]);
        assert_eq!(arena.words().as_ptr() as usize % 64, 0);
        assert!(Arena::from_le_bytes(&bytes[..5]).is_err());
    }

    #[test]
    fn u32_packing_roundtrips() {
        let mut words = Vec::new();
        let values: Vec<u32> = (0..13u32).map(|i| i.wrapping_mul(0x0101_6B55)).collect();
        let written = push_u32s(&mut words, values.iter().copied());
        assert_eq!(written, words_for_u32s(values.len()));
        for (j, &v) in values.iter().enumerate() {
            assert_eq!(get_u32(&words, j), v, "value {j}");
        }
    }

    #[test]
    fn pad_reaches_block_boundary() {
        let mut words = vec![1u64; 3];
        pad_to_block(&mut words);
        assert_eq!(words.len(), 8);
        pad_to_block(&mut words);
        assert_eq!(words.len(), 8);
    }

    #[test]
    fn hugepage_advice_falls_back_gracefully() {
        // Too small for even one huge page: always the fallback path,
        // arena untouched.
        let small = Arena::from_words(&[1, 2, 3]);
        assert!(!small.advise_hugepages());
        assert_eq!(small.words(), &[1, 2, 3]);
        // Large enough to cover whole huge pages: the kernel may accept
        // or reject (THP config), but contents must survive either way.
        let n = (3 * HUGEPAGE_BYTES) / 8;
        let words: Vec<u64> = (0..n as u64).collect();
        let big = Arena::from_words(&words);
        let advised = big.advise_hugepages();
        assert_eq!(
            big.words().len(),
            n,
            "advice (accepted = {advised}) must not resize"
        );
        assert_eq!(big.words()[n - 1], n as u64 - 1);
        assert_eq!(big.words()[0], 0);
    }

    #[test]
    fn checked_slice_rejects_bad_ranges() {
        let words = [0u64; 4];
        assert!(slice(&words, 0, 4).is_ok());
        assert!(slice(&words, 2, 3).is_err());
        assert!(slice(&words, usize::MAX, 2).is_err());
    }
}
