//! Succinct and compressed data structures.
//!
//! This crate is the string self-index substrate required by the XBW-b
//! transform of *Compressing IP Forwarding Tables: Towards Entropy Bounds and
//! Beyond* (SIGCOMM 2013). It provides, from scratch:
//!
//! * [`BitVec`] — a plain bit vector over `u64` words with bit-granular
//!   reads and writes,
//! * [`RsBitVec`] — a bit vector fully interleaved into aligned 64-byte
//!   lines (cs-poppy / rank9 lineage: absolute count, packed per-word
//!   sub-counts and six data words per line) plus a sampled select
//!   directory: single-cache-line `rank`, O(1) expected `select`,
//! * [`RrrVec`] — the RRR compressed bit vector of Raman, Raman and Rao
//!   (SODA 2002): 63-bit blocks coded as (class, offset) pairs, `nH0 + o(n)`
//!   bits, constant-time `rank`/`access` with a sub-sampled directory that
//!   bounds every class scan to < 8 blocks,
//! * [`broadword`] — branchless word-level select (Vigna's sideways
//!   addition), the in-word finish of every select query,
//! * [`IntVec`] — fixed-width packed integer arrays,
//! * [`huffman`] — canonical Huffman codes over small alphabets,
//! * [`WaveletTree`] — a pointer-based wavelet tree, either balanced
//!   (`n·lg σ` bits) or Huffman-shaped (`n(H0+1) + o(n)` bits), supporting
//!   `access`, `rank_sym` and `select_sym`.
//!
//! Both bit vectors additionally expose a fused `access_rank1(i)` →
//! `(bit, rank)` primitive that answers "what is bit `i` and how many ones
//! precede it" from a single directory probe; the wavelet-tree descent and
//! the XBW-b lookup loop are built on it.
//!
//! # Conventions
//!
//! Throughout the crate:
//!
//! * `rank1(i)` is the number of set bits in positions `[0, i)` — exclusive
//!   of `i` itself, so `rank1(len())` is the total popcount;
//! * `select1(q)` is the position of the `q`-th set bit with `q ≥ 1`, so
//!   `select1(rank1(p) + 1) == Some(p)` whenever bit `p` is set;
//! * every structure reports its own footprint via `size_bits()`, counting
//!   the bits a serialized form would occupy (universal constant-size decode
//!   tables excluded, as is standard in the succinct literature).
//!
//! # What is deliberately omitted
//!
//! * Dynamic (updatable) compressed bit vectors (Mäkinen–Navarro) — the
//!   paper only cites them as a possibility for XBW-b updates;
//! * worst-case O(1) `select` (Clark/valence structures): the sampled
//!   directory gives O(1) expected time on FIB-shaped inputs and O(log n)
//!   only for pathologically clustered ones.

// `deny` rather than `forbid`: three modules carry narrowly-scoped
// `#[allow]`s — `mem` for the x86 prefetch hint intrinsic (a pure hint
// with no memory effects), `simd` for the bounds-checked,
// feature-detected AVX2 gather, and `storage` for the advisory
// `madvise(MADV_HUGEPAGE)` syscall; everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bits;
pub mod broadword;
pub mod huffman;
mod intvec;
pub mod mem;
mod rrr;
mod rsvec;
pub mod simd;
pub mod storage;
mod wavelet;

pub use bits::BitVec;
pub use intvec::{IntVec, IntVecRef};
pub use rrr::{RrrVec, RrrVecRef};
pub use rsvec::{RsBitVec, RsBitVecRef};
pub use storage::{Arena, StorageError};
pub use wavelet::{WaveletBacking, WaveletShape, WaveletTree, WaveletTreeRef};

/// Number of bits needed to distinguish `count` values: `⌈log2(count)⌉`.
///
/// This is the paper's `lg x` notation. By convention `ceil_log2(0)` and
/// `ceil_log2(1)` are both `0`.
#[must_use]
pub fn ceil_log2(count: u64) -> u32 {
    if count <= 1 {
        0
    } else {
        64 - (count - 1).leading_zeros()
    }
}

/// FNV-1a 64-bit hash — the workspace's standard cheap byte-string hash,
/// used for blob integrity checks, seed derivation and data fingerprints.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(0xCBF2_9CE4_8422_2325, bytes)
}

/// Folds more bytes into an FNV-1a state, so multi-part inputs (e.g. a
/// file hashed with one field zeroed) share the single implementation:
/// `fnv1a(whole) == fnv1a_continue(fnv1a(head), tail)`.
#[must_use]
pub fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0100_0000_01B3);
    }
    hash
}

/// Shannon entropy (bits/symbol) of an empirical distribution given as raw
/// counts. Zero counts are ignored; an empty or single-symbol distribution
/// has entropy 0.
#[must_use]
pub fn shannon_entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total_f;
            h -= p * p.log2();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(255), 8);
        assert_eq!(ceil_log2(256), 8);
        assert_eq!(ceil_log2(257), 9);
        assert_eq!(ceil_log2(1 << 32), 32);
    }

    #[test]
    fn entropy_uniform_and_degenerate() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[7]), 0.0);
        assert_eq!(shannon_entropy(&[0, 0, 9]), 0.0);
        let h = shannon_entropy(&[1, 1, 1, 1]);
        assert!((h - 2.0).abs() < 1e-12);
        let h = shannon_entropy(&[1, 1]);
        assert!((h - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_bernoulli_quarter() {
        // H(1/4) = 1/4·lg 4 + 3/4·lg(4/3) ≈ 0.811278
        let h = shannon_entropy(&[1, 3]);
        assert!((h - 0.811_278_124_459_1).abs() < 1e-9);
    }
}
