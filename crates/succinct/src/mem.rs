//! Software prefetch: the one memory-level-parallelism primitive the
//! lookup pipelines need that safe Rust cannot express.
//!
//! The prefix-DAG memory model (Tapolcai et al.) argues compressed-FIB
//! walk cost is dominated by memory latency, not instructions; the
//! batched lookup paths therefore overlap the independent line fetches of
//! different packets. An explicit prefetch lets a pipeline go one step
//! further and request the *next* packet's first cache line while the
//! current one resolves.
//!
//! This is the only module in the crate allowed to use `unsafe`, and the
//! only thing it wraps is [`core::arch::x86_64::_mm_prefetch`] — a pure
//! hint instruction with no architectural side effects: it cannot fault,
//! cannot trap, and never observes or mutates memory (an unmapped address
//! simply drops the hint). The safe wrapper is therefore sound for any
//! pointer value, dangling included. On non-x86_64 targets it compiles to
//! nothing.

/// Structures smaller than this are assumed cache-resident in steady
/// state, and the software-pipelined lookup paths skip their prefetch
/// stage: a hint for a line already in some cache level is pure overhead
/// (measured ~5–10% on the taz benchmark, where every compressed engine
/// fits in L2/L3 and out-of-order execution hides the remaining hit
/// latency). 4 MiB sits just above the paper's evaluation machine's 3 MB
/// LLC: past it, uniform traffic misses to DRAM on most first touches
/// and the prefetch buys real overlap — the demand-miss conversion is
/// validated deterministically against `hwsim::CacheSim` in
/// `tests/prefetch.rs`, which models the cold-cache regime directly.
pub const PREFETCH_WORTHWHILE_BYTES: usize = 4 << 20;

/// Requests the cache line containing `ptr` into all cache levels
/// (PREFETCHT0). Sound for any pointer value — see the module docs.
#[allow(unsafe_code)]
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is a hint; it performs no load, no store, and
    // raises no exception regardless of the address's validity.
    unsafe {
        core::arch::x86_64::_mm_prefetch(ptr.cast::<i8>(), core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Prefetches the cache line holding `slice[index]`, if in bounds (an
/// out-of-range index is ignored — prefetching is best-effort by nature).
#[inline(always)]
pub fn prefetch_index<T>(slice: &[T], index: usize) {
    if let Some(item) = slice.get(index) {
        prefetch_read(item);
    }
}

/// The software-pipeline scaffold shared by every `lookup_stream`
/// implementation: prefetch the first `lanes` items, then for each
/// `lanes`-sized chunk prefetch the *next* chunk before resolving the
/// current one, and finish the tail one item at a time. `prefetch` is
/// the engine's first-touch hint, `resolve` its lockstep multi-lane
/// kernel (called with exactly `lanes` items), `scalar` its one-item
/// fallback.
///
/// # Panics
/// Panics if `out` is shorter than `addrs` or `lanes` is 0.
pub fn pipelined_stream<A: Copy, T>(
    lanes: usize,
    addrs: &[A],
    out: &mut [T],
    mut prefetch: impl FnMut(A),
    mut resolve: impl FnMut(&[A], &mut [T]),
    mut scalar: impl FnMut(A, &mut T),
) {
    assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-stream contract, not per-packet
    assert!(lanes > 0, "need at least one lane"); // fibcheck: allow(hot-path): documented once-per-stream contract, not per-packet
    let out = &mut out[..addrs.len()];
    for addr in addrs.iter().take(lanes) {
        prefetch(*addr);
    }
    let n_chunks = addrs.len() / lanes;
    for c in 0..n_chunks {
        let base = c * lanes;
        let next = base + lanes;
        if c + 1 < n_chunks {
            for addr in &addrs[next..next + lanes] {
                prefetch(*addr);
            }
        }
        resolve(&addrs[base..next], &mut out[base..next]);
    }
    let tail = n_chunks * lanes;
    for (addr, slot) in addrs[tail..].iter().zip(&mut out[tail..]) {
        scalar(*addr, slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_stream_covers_every_slot_in_order() {
        let addrs: Vec<u32> = (0..23).collect();
        let mut out = vec![0u32; 25];
        let mut prefetched = Vec::new();
        pipelined_stream(
            4,
            &addrs,
            &mut out,
            |a| prefetched.push(a),
            |chunk, slots| {
                for (a, s) in chunk.iter().zip(slots.iter_mut()) {
                    *s = a * 10;
                }
            },
            |a, s| *s = a * 10,
        );
        for (i, &v) in out[..23].iter().enumerate() {
            assert_eq!(v, i as u32 * 10);
        }
        // Every chunk-resolved address (not the scalar tail) was
        // prefetched exactly once, in pipeline order.
        assert_eq!(prefetched, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn prefetch_accepts_any_pointer() {
        let v = [1u64, 2, 3];
        prefetch_read(v.as_ptr());
        prefetch_read(std::ptr::null::<u64>());
        prefetch_read(usize::MAX as *const u64);
        prefetch_index(&v, 0);
        prefetch_index(&v, 2);
        prefetch_index(&v, 99); // out of bounds: ignored
        assert_eq!(v[1], 2);
    }
}
