//! Branchless word-level bit tricks, after Vigna's *Broadword
//! Implementation of Rank/Select Queries* (WEA 2008).
//!
//! The only operation the rank/select structures need beyond `count_ones`
//! is in-word select: the position of the `q`-th set bit of a `u64`.
//! [`select_in_word`] computes it with a sideways addition (an unrolled
//! popcount that keeps every byte's partial sum), a parallel byte
//! comparison, and one 2 KiB byte-level lookup — no data-dependent
//! branches, so the CPU never mispredicts on random bit patterns.

/// `0x01` replicated to every byte.
const ONES_STEP_8: u64 = 0x0101_0101_0101_0101;
/// `0x80` replicated to every byte.
const MSBS_STEP_8: u64 = 0x8080_8080_8080_8080;

/// `SELECT_IN_BYTE[b * 8 + k]` is the position (0–7) of the `k+1`-th set
/// bit of byte `b`; entries past the byte's popcount are unspecified.
static SELECT_IN_BYTE: [u8; 2048] = build_select_in_byte();

const fn build_select_in_byte() -> [u8; 2048] {
    let mut table = [0u8; 2048];
    let mut b = 0usize;
    while b < 256 {
        let mut seen = 0usize;
        let mut pos = 0usize;
        while pos < 8 {
            if (b >> pos) & 1 == 1 {
                table[b * 8 + seen] = pos as u8;
                seen += 1;
            }
            pos += 1;
        }
        b += 1;
    }
    table
}

/// Position (0-based) of the `q`-th set bit in `word`, `1 ≤ q ≤ popcount`.
///
/// Branchless: a sideways addition accumulates per-byte prefix popcounts,
/// a parallel unsigned comparison locates the byte holding the target bit,
/// and a 256×8 table resolves the position within it. Roughly 12 ALU ops
/// plus one L1-resident table load, independent of the bit pattern —
/// versus up to 8 loop iterations plus 7 `b &= b - 1` steps for the
/// byte-scanning implementation it replaces.
#[inline]
#[must_use]
pub fn select_in_word(word: u64, q: u32) -> u32 {
    debug_assert!(
        q >= 1 && q <= word.count_ones(),
        "select_in_word: q = {q} not in 1..={}",
        word.count_ones()
    );
    let k = u64::from(q - 1);
    // Sideways addition: byte i of `byte_sums` = popcount of bytes 0..=i.
    let mut s = word - ((word >> 1) & 0x5555_5555_5555_5555);
    s = (s & 0x3333_3333_3333_3333) + ((s >> 2) & 0x3333_3333_3333_3333);
    s = (s + (s >> 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    let byte_sums = s.wrapping_mul(ONES_STEP_8);
    // Byte i gets its MSB set iff byte_sums[i] ≤ k. Both operands are
    // < 128 per byte, so borrows never cross byte boundaries.
    let geq = ((k * ONES_STEP_8) | MSBS_STEP_8).wrapping_sub(byte_sums) & MSBS_STEP_8;
    // The target byte index = number of bytes whose prefix sum is ≤ k.
    let byte_idx = ((geq >> 7).wrapping_mul(ONES_STEP_8) >> 56) as u32;
    // Set bits strictly before the target byte: prefix sum of the byte
    // below it (the shift-by-8 turns "inclusive" into "exclusive", and
    // byte 0 correctly reads 0).
    let base = ((byte_sums << 8) >> (8 * byte_idx)) & 0xFF;
    let byte = (word >> (8 * byte_idx)) & 0xFF;
    8 * byte_idx + u32::from(SELECT_IN_BYTE[(byte * 8 + (k - base)) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: clear the lowest q-1 set bits, take the next.
    fn naive(word: u64, q: u32) -> u32 {
        let mut w = word;
        for _ in 1..q {
            w &= w - 1;
        }
        w.trailing_zeros()
    }

    #[test]
    fn matches_naive_on_structured_words() {
        for word in [
            0b1010_1101u64,
            1,
            1 << 63,
            u64::MAX,
            0xAAAA_AAAA_AAAA_AAAA,
            0x5555_5555_5555_5555,
            0x8000_0000_0000_0001,
            0x00FF_00FF_00FF_00FF,
        ] {
            for q in 1..=word.count_ones() {
                assert_eq!(select_in_word(word, q), naive(word, q), "{word:#x} q={q}");
            }
        }
    }

    #[test]
    fn matches_naive_on_pseudorandom_words() {
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            for q in 1..=x.count_ones() {
                assert_eq!(select_in_word(x, q), naive(x, q), "{x:#x} q={q}");
            }
        }
    }

    #[test]
    fn every_single_bit_word() {
        for pos in 0..64 {
            assert_eq!(select_in_word(1u64 << pos, 1), pos);
        }
    }
}
