//! Synchronous-SRAM / FPGA lookup pipeline model.
//!
//! The paper's hardware prototype stores the serialized prefix DAG in
//! SRAM clocked synchronously with the lookup logic, so every hop of the
//! traversal costs exactly one clock. An IP lookup therefore takes
//! `pipeline overhead + number of memory words touched` cycles; the paper
//! measures 7.1 cycles on average for taz (λ = 11, average folded depth
//! ≈ 3.7, plus the root-array fetch and pipeline stages).

use fib_core::FibEngine;
use fib_trie::Address;

/// Parameters of the modeled hardware.
#[derive(Clone, Copy, Debug)]
pub struct SramModel {
    /// Clock frequency in MHz (the paper's Virtex-II Pro ran around
    /// 100 MHz; modern parts reach GHz — §5.3's scaling argument).
    pub clock_mhz: f64,
    /// Fixed pipeline cycles per lookup (input registration, bit slicing,
    /// output mux).
    pub pipeline_cycles: f64,
    /// Clocks per SRAM word fetch (1 for true synchronous SRAM).
    pub cycles_per_access: f64,
}

impl Default for SramModel {
    fn default() -> Self {
        Self {
            clock_mhz: 100.0,
            pipeline_cycles: 2.0,
            cycles_per_access: 1.0,
        }
    }
}

/// Result of replaying a trace through the model.
#[derive(Clone, Copy, Debug)]
pub struct SramReport {
    /// Mean cycles per lookup.
    pub avg_cycles: f64,
    /// Worst-case cycles observed.
    pub max_cycles: f64,
    /// Million lookups per second at the configured clock.
    pub mlps: f64,
    /// Number of lookups replayed.
    pub lookups: u64,
}

impl SramModel {
    /// Replays `addrs` through a memory-traced engine and aggregates the
    /// cycle counts.
    ///
    /// # Panics
    /// Panics if the engine does not produce memory traces (the model
    /// would silently report pipeline-only numbers otherwise).
    pub fn replay<A: Address, E: FibEngine<A> + ?Sized>(
        &self,
        engine: &E,
        addrs: impl IntoIterator<Item = A>,
    ) -> SramReport {
        assert!(
            engine.traces_memory(),
            "engine '{}' has no memory instrumentation",
            engine.name()
        );
        let mut total = 0.0;
        let mut max: f64 = 0.0;
        let mut lookups = 0u64;
        for addr in addrs {
            let mut accesses = 0u64;
            engine.lookup_traced(addr, &mut |_, _| accesses += 1);
            let cycles = self.pipeline_cycles + self.cycles_per_access * accesses as f64;
            total += cycles;
            max = max.max(cycles);
            lookups += 1;
        }
        let avg = if lookups == 0 {
            0.0
        } else {
            total / lookups as f64
        };
        SramReport {
            avg_cycles: avg,
            max_cycles: max,
            mlps: if avg == 0.0 {
                0.0
            } else {
                self.clock_mhz / avg
            },
            lookups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_core::{PrefixDag, SerializedDag};
    use fib_trie::{BinaryTrie, NextHop, Prefix4};
    use fib_workload::rng::Xoshiro256;
    use fib_workload::FibSpec;

    fn sample_fib() -> BinaryTrie<u32> {
        let mut rng = Xoshiro256::seed_from_u64(11);
        FibSpec::dfz_like(20_000).generate(&mut rng)
    }

    #[test]
    fn cycles_track_depth_plus_overhead() {
        let trie = sample_fib();
        let dag = PrefixDag::from_trie(&trie, 11);
        let ser = SerializedDag::from_dag(&dag);
        let mut rng = Xoshiro256::seed_from_u64(12);
        let addrs = fib_workload::traces::uniform::<u32, _>(&mut rng, 2000);
        let (avg_depth, _) = ser.depth_stats(addrs.iter().copied());
        let report = SramModel::default().replay(&ser, addrs.iter().copied());
        // accesses = 1 (root entry) + depth; cycles = 2 + accesses.
        let expected = 2.0 + 1.0 + avg_depth;
        assert!(
            (report.avg_cycles - expected).abs() < 1e-9,
            "avg {} vs expected {expected}",
            report.avg_cycles
        );
        assert!(report.mlps > 0.0);
        assert_eq!(report.lookups, 2000);
    }

    #[test]
    fn single_level_fib_is_near_pipeline_floor() {
        // Default route only: the root-array fetch answers immediately.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert("0.0.0.0/0".parse::<Prefix4>().unwrap(), NextHop::new(1));
        let ser = SerializedDag::from_dag(&PrefixDag::from_trie(&trie, 11));
        let report = SramModel::default().replay(&ser, [0u32, 1, 2, u32::MAX]);
        assert!(
            (report.avg_cycles - 3.0).abs() < 1e-9,
            "2 pipeline + 1 fetch"
        );
        assert!((report.max_cycles - 3.0).abs() < 1e-9);
    }

    #[test]
    fn faster_clock_scales_mlps_linearly() {
        let trie = sample_fib();
        let ser = SerializedDag::from_dag(&PrefixDag::from_trie(&trie, 11));
        let addrs: Vec<u32> = (0..500u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let slow = SramModel {
            clock_mhz: 100.0,
            ..SramModel::default()
        }
        .replay(&ser, addrs.iter().copied());
        let fast = SramModel {
            clock_mhz: 1000.0,
            ..SramModel::default()
        }
        .replay(&ser, addrs.iter().copied());
        assert!((fast.mlps / slow.mlps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn multibit_dag_cuts_cycles_as_conjectured() {
        // The paper's §7: multibit DAGs should improve lookup time. In the
        // SRAM cycle model the stride-8 DAG must beat the stride-1 DAG by
        // several cycles on average.
        let trie = sample_fib();
        let narrow = fib_core::MultibitDag::from_trie(&trie, 1);
        let wide = fib_core::MultibitDag::from_trie(&trie, 8);
        let addrs: Vec<u32> = (0..2000u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let model = SramModel::default();
        let slow = model.replay(&narrow, addrs.iter().copied());
        let fast = model.replay(&wide, addrs.iter().copied());
        assert!(
            fast.avg_cycles + 2.0 < slow.avg_cycles,
            "stride 8 ({:.1} cyc) must beat stride 1 ({:.1} cyc)",
            fast.avg_cycles,
            slow.avg_cycles
        );
        assert!(fast.mlps > slow.mlps);
    }

    #[test]
    #[should_panic(expected = "no memory instrumentation")]
    fn untraced_engine_is_rejected() {
        let trie = sample_fib();
        let dag = PrefixDag::from_trie(&trie, 11);
        // The pointer-machine DAG has no trace; only the serialized one does.
        let _ = SramModel::default().replay(&dag, [0u32]);
    }
}
