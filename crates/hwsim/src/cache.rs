//! Set-associative cache-hierarchy simulator.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct CacheLevel {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line: usize,
}

impl CacheLevel {
    fn sets(&self) -> usize {
        (self.capacity / (self.ways * self.line)).max(1)
    }
}

/// Per-level hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit this level.
    pub hits: u64,
    /// Accesses that missed this level (and went further out).
    pub misses: u64,
}

/// One level's LRU state: per set, the resident line tags in recency order
/// (most recent last).
struct LevelState {
    geometry: CacheLevel,
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl LevelState {
    fn new(geometry: CacheLevel) -> Self {
        assert!(geometry.line.is_power_of_two(), "line size must be 2^k");
        assert!(geometry.ways >= 1 && geometry.capacity >= geometry.ways * geometry.line);
        Self {
            sets: vec![Vec::with_capacity(geometry.ways); geometry.sets()],
            geometry,
            stats: CacheStats::default(),
        }
    }

    /// Returns true on hit; on miss the line is installed (inclusive
    /// hierarchy, LRU eviction).
    fn access(&mut self, line_addr: u64) -> bool {
        let set = (line_addr as usize) % self.sets.len();
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&t| t == line_addr) {
            let tag = entries.remove(pos);
            entries.push(tag);
            self.stats.hits += 1;
            true
        } else {
            if entries.len() == self.geometry.ways {
                entries.remove(0);
            }
            entries.push(line_addr);
            self.stats.misses += 1;
            false
        }
    }
}

/// A multi-level cache simulator fed with `(byte address, size)` accesses.
///
/// The default geometry is the paper's evaluation machine: a 2.50 GHz
/// Intel Core i5 with 32 KB 8-way L1D, 256 KB 8-way L2 and 3 MB 12-way
/// L3, 64-byte lines.
pub struct CacheSim {
    levels: Vec<LevelState>,
    line: usize,
    /// Accesses that missed every level (went to DRAM).
    dram_accesses: u64,
    total_accesses: u64,
}

impl CacheSim {
    /// Builds a hierarchy from outermost-last level geometries.
    ///
    /// # Panics
    /// Panics if `levels` is empty or line sizes differ between levels.
    #[must_use]
    pub fn new(levels: &[CacheLevel]) -> Self {
        assert!(!levels.is_empty());
        let line = levels[0].line;
        assert!(
            levels.iter().all(|l| l.line == line),
            "all levels must share a line size"
        );
        Self {
            levels: levels.iter().map(|&g| LevelState::new(g)).collect(),
            line,
            dram_accesses: 0,
            total_accesses: 0,
        }
    }

    /// The paper's Core i5 geometry.
    #[must_use]
    pub fn core_i5() -> Self {
        Self::new(&[
            CacheLevel {
                capacity: 32 * 1024,
                ways: 8,
                line: 64,
            },
            CacheLevel {
                capacity: 256 * 1024,
                ways: 8,
                line: 64,
            },
            CacheLevel {
                capacity: 3 * 1024 * 1024,
                ways: 12,
                line: 64,
            },
        ])
    }

    /// Feeds one access of `size` bytes at `addr`, touching every spanned
    /// cache line through the hierarchy.
    pub fn access(&mut self, addr: u64, size: u32) {
        let first = addr / self.line as u64;
        let last = (addr + u64::from(size).max(1) - 1) / self.line as u64;
        for line_addr in first..=last {
            self.total_accesses += 1;
            let mut hit = false;
            for level in &mut self.levels {
                if level.access(line_addr) {
                    hit = true;
                    break;
                }
                // Miss at this level: continue to the next (the line is
                // installed on the way, modeling an inclusive fill).
            }
            if !hit {
                self.dram_accesses += 1;
            }
        }
    }

    /// Per-level statistics, innermost first.
    #[must_use]
    pub fn level_stats(&self) -> Vec<CacheStats> {
        self.levels.iter().map(|l| l.stats).collect()
    }

    /// Accesses that missed the entire hierarchy — the "cache-misses"
    /// `perf` counts (LLC misses).
    #[must_use]
    pub fn llc_misses(&self) -> u64 {
        self.dram_accesses
    }

    /// Total line-granular accesses seen.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// LLC misses per unit of work (e.g. per packet).
    #[must_use]
    pub fn misses_per(&self, units: u64) -> f64 {
        if units == 0 {
            0.0
        } else {
            self.llc_misses() as f64 / units as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 2 sets × 2 ways × 64 B lines = 256 B single level.
        CacheSim::new(&[CacheLevel {
            capacity: 256,
            ways: 2,
            line: 64,
        }])
    }

    #[test]
    fn repeated_access_hits() {
        let mut sim = tiny();
        sim.access(0, 8);
        sim.access(8, 8); // same line
        let stats = sim.level_stats()[0];
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(sim.llc_misses(), 1);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut sim = tiny();
        sim.access(60, 8); // bytes 60..68 span lines 0 and 1
        assert_eq!(sim.total_accesses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut sim = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets, line 64): 0→set0, 64→set1,
        // 128→set0, 256→set0…
        sim.access(0, 1); // line 0 → set 0, miss
        sim.access(128, 1); // line 2 → set 0, miss
        sim.access(256, 1); // line 4 → set 0, miss, evicts line 0
        sim.access(0, 1); // line 0 again: miss (evicted)
        assert_eq!(sim.level_stats()[0].misses, 4);
        // line 2 was re-LRU'd by nothing, but line 4 is most recent:
        sim.access(256, 1);
        assert_eq!(sim.level_stats()[0].hits, 1);
    }

    #[test]
    fn working_set_within_capacity_converges_to_all_hits() {
        let mut sim = CacheSim::core_i5();
        // 16 KB working set < 32 KB L1: after the first sweep everything hits.
        for round in 0..3 {
            for addr in (0..16 * 1024u64).step_by(64) {
                sim.access(addr, 8);
            }
            if round == 0 {
                assert_eq!(sim.llc_misses(), 256, "cold misses fill the cache");
            }
        }
        assert_eq!(sim.llc_misses(), 256, "no further misses after warmup");
    }

    #[test]
    fn working_set_beyond_llc_thrashes() {
        let mut sim = CacheSim::core_i5();
        // Stream 64 MB twice: far beyond the 3 MB L3, so the second sweep
        // still misses everywhere.
        let lines = 64 * 1024 * 1024 / 64u64;
        for _ in 0..2 {
            for i in 0..lines {
                sim.access(i * 64, 8);
            }
        }
        assert_eq!(sim.llc_misses(), lines * 2, "pure streaming never hits");
    }

    #[test]
    fn misses_per_packet_arithmetic() {
        let mut sim = tiny();
        sim.access(0, 1);
        sim.access(4096, 1);
        assert!((sim.misses_per(2) - 1.0).abs() < 1e-12);
        assert_eq!(sim.misses_per(0), 0.0);
    }
}
