//! Hardware cost models for the Table 2 reproduction.
//!
//! The paper measures three things we cannot run in this environment: a
//! Linux kernel module on a 2.5 GHz Core i5 (CPU cycle counts), the same
//! CPU's cache-miss performance counters, and a Xilinx Virtex-II Pro FPGA
//! with synchronous SRAM (clock cycles per lookup). This crate substitutes
//! deterministic models fed by the *exact memory access streams* of the
//! lookup engines (`FibEngine::lookup_traced`):
//!
//! * [`CacheSim`] — a set-associative, multi-level, LRU cache hierarchy
//!   with the i5's geometry; reproduces the cache-misses/packet column,
//! * [`SramModel`] — a synchronous-SRAM pipeline: one clock per word
//!   fetch plus a fixed pipeline overhead; reproduces the FPGA
//!   cycles/lookup and Mlps columns.
//!
//! Both are models, not emulators: they capture the paper's qualitative
//! claims (a 200 KB pDAG lives in cache; a 26 MB `fib_trie` does not; an
//! SRAM-resident DAG costs `pipeline + avg-depth` cycles) without
//! pretending to predict absolute wall-clock numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod sram;

pub use cache::{CacheLevel, CacheSim, CacheStats};
pub use sram::{SramModel, SramReport};
