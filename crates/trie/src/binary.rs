//! The binary prefix tree of Fig. 1(b) — the venerable trie, arena-based.

use std::marker::PhantomData;

use crate::addr::{Address, Depth, Prefix};
use crate::nexthop::NextHop;

const NONE: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    left: u32,
    right: u32,
    /// `NONE` when the node carries no label; otherwise a next-hop index.
    label: u32,
}

impl Node {
    const EMPTY: Self = Self {
        left: NONE,
        right: NONE,
        label: NONE,
    };
}

/// A binary prefix tree (trie) over addresses of type `A`.
///
/// Every path from the root corresponds to an IP prefix; a node carries a
/// label when that exact prefix has a route. Longest-prefix match walks the
/// address bits and remembers the last label seen — O(W) — and updates are
/// O(W) as well. This is both the baseline FIB of Section 2 and the
/// *control FIB* that trie-folding (Section 4) keeps in slow memory to
/// drive updates.
///
/// Nodes live in an arena (`Vec`) with a free list, so clones are cheap
/// memcpys and there is no per-node allocation.
#[derive(Clone, Debug)]
pub struct BinaryTrie<A: Address> {
    nodes: Vec<Node>,
    free: Vec<u32>,
    routes: usize,
    _marker: PhantomData<A>,
}

impl<A: Address> Default for BinaryTrie<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Address> BinaryTrie<A> {
    /// Creates an empty trie (a single unlabeled root).
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::EMPTY],
            free: Vec::new(),
            routes: 0,
            _marker: PhantomData,
        }
    }

    /// Number of routes (labeled nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes
    }

    /// Whether the trie holds no routes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes == 0
    }

    /// Number of live trie nodes, including unlabeled interior nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn alloc(&mut self) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node::EMPTY;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node::EMPTY);
            idx
        }
    }

    /// Inserts or replaces the route for `prefix`, returning the previous
    /// next-hop if one existed.
    pub fn insert(&mut self, prefix: Prefix<A>, next_hop: NextHop) -> Option<NextHop> {
        let mut idx = 0u32;
        for depth in 0..prefix.len() {
            let bit = prefix.bit(depth);
            let child = self.child(idx, bit);
            idx = if child == NONE {
                let new = self.alloc();
                self.set_child(idx, bit, new);
                new
            } else {
                child
            };
        }
        let old = self.nodes[idx as usize].label;
        self.nodes[idx as usize].label = next_hop.index();
        if old == NONE {
            self.routes += 1;
            None
        } else {
            Some(NextHop::new(old))
        }
    }

    /// Removes the route for `prefix`, returning its next-hop. Interior
    /// nodes left without labels or children are pruned.
    pub fn remove(&mut self, prefix: Prefix<A>) -> Option<NextHop> {
        // Record the path so we can prune bottom-up.
        let mut path = Vec::with_capacity(prefix.len() as usize + 1);
        let mut idx = 0u32;
        path.push(idx);
        for depth in 0..prefix.len() {
            let child = self.child(idx, prefix.bit(depth));
            if child == NONE {
                return None;
            }
            idx = child;
            path.push(idx);
        }
        let old = self.nodes[idx as usize].label;
        if old == NONE {
            return None;
        }
        self.nodes[idx as usize].label = NONE;
        self.routes -= 1;
        // Prune childless, unlabeled nodes (never the root).
        for depth in (1..path.len()).rev() {
            let node = path[depth];
            let n = self.nodes[node as usize];
            if n.left == NONE && n.right == NONE && n.label == NONE {
                let parent = path[depth - 1];
                let bit = prefix.bit(depth as u8 - 1);
                self.set_child(parent, bit, NONE);
                self.free.push(node);
            } else {
                break;
            }
        }
        Some(NextHop::new(old))
    }

    /// The next-hop registered for exactly `prefix`, if any.
    #[must_use]
    pub fn exact_match(&self, prefix: Prefix<A>) -> Option<NextHop> {
        let mut idx = 0u32;
        for depth in 0..prefix.len() {
            let child = self.child(idx, prefix.bit(depth));
            if child == NONE {
                return None;
            }
            idx = child;
        }
        let label = self.nodes[idx as usize].label;
        (label != NONE).then(|| NextHop::new(label))
    }

    /// Longest-prefix-match lookup.
    #[must_use]
    #[inline]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        self.lookup_with_depth(addr).0
    }

    /// Longest-prefix-match lookup, also returning the number of nodes
    /// visited below the root (used by depth statistics).
    #[must_use]
    pub fn lookup_with_depth(&self, addr: A) -> (Option<NextHop>, Depth) {
        let mut idx = 0u32;
        let mut best = self.nodes[0].label;
        let mut depth = 0u8;
        loop {
            if depth >= A::WIDTH {
                break;
            }
            let child = self.child(idx, addr.bit(depth));
            if child == NONE {
                break;
            }
            idx = child;
            depth += 1;
            let label = self.nodes[idx as usize].label;
            if label != NONE {
                best = label;
            }
        }
        (
            (best != NONE).then(|| NextHop::new(best)),
            Depth::from(depth),
        )
    }

    /// Lookup reporting every node touch as `(byte offset, byte size)`
    /// within the arena — the access stream for cache simulation.
    pub fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        const NODE_BYTES: u64 = 12;
        let mut idx = 0u32;
        sink(0, NODE_BYTES as u32);
        let mut best = self.nodes[0].label;
        let mut depth = 0u8;
        loop {
            if depth >= A::WIDTH {
                break;
            }
            let child = self.child(idx, addr.bit(depth));
            if child == NONE {
                break;
            }
            idx = child;
            depth += 1;
            sink(u64::from(idx) * NODE_BYTES, NODE_BYTES as u32);
            let label = self.nodes[idx as usize].label;
            if label != NONE {
                best = label;
            }
        }
        (best != NONE).then(|| NextHop::new(best))
    }

    /// Iterates over all routes in lexicographic (DFS, left-first) order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix<A>, NextHop)> + '_ {
        let mut stack = vec![(0u32, Prefix::<A>::root())];
        std::iter::from_fn(move || {
            while let Some((idx, prefix)) = stack.pop() {
                let node = self.nodes[idx as usize];
                if let Some((left, right)) = prefix.children() {
                    // Push right first so left pops first.
                    if node.right != NONE {
                        stack.push((node.right, right));
                    }
                    if node.left != NONE {
                        stack.push((node.left, left));
                    }
                }
                if node.label != NONE {
                    return Some((prefix, NextHop::new(node.label)));
                }
            }
            None
        })
    }

    /// The deepest labeled or structural node, in bits.
    #[must_use]
    pub fn max_depth(&self) -> u8 {
        let mut max = 0;
        let mut stack = vec![(0u32, 0u8)];
        while let Some((idx, depth)) = stack.pop() {
            max = max.max(depth);
            let node = self.nodes[idx as usize];
            if node.left != NONE {
                stack.push((node.left, depth + 1));
            }
            if node.right != NONE {
                stack.push((node.right, depth + 1));
            }
        }
        max
    }

    /// A read-only view of the root, for structural traversals.
    #[must_use]
    pub fn root(&self) -> NodeRef<'_, A> {
        NodeRef { trie: self, idx: 0 }
    }

    /// Resolves the whole `depth`-bit block containing `addr` at once:
    /// `Some(answer)` when every address in the block shares one
    /// longest-prefix-match answer (the block is *pure*), `None` when a
    /// route longer than `depth` splits it.
    ///
    /// This is the purity oracle behind the traffic-aware hot slab in
    /// `fib-core`: a pure block's answer can be pinned in a flat
    /// direct-index table and served without walking the compressed
    /// structure, while remaining bit-identical to the full walk.
    ///
    /// # Panics
    /// Panics if `depth` exceeds the address width.
    #[must_use]
    pub fn block_resolution(&self, addr: A, depth: u8) -> Option<Option<NextHop>> {
        assert!(depth <= A::WIDTH, "block depth beyond address width");
        let mut idx = 0u32;
        let mut best = self.nodes[0].label;
        for d in 0..depth {
            let child = self.child(idx, addr.bit(d));
            if child == NONE {
                // The walk falls off the trie above the block boundary:
                // no route longer than `d` covers any address in the
                // block, so the answer is constant across it.
                return Some((best != NONE).then(|| NextHop::new(best)));
            }
            idx = child;
            let label = self.nodes[idx as usize].label;
            if label != NONE {
                best = label;
            }
        }
        // The walk reached the block's root node. Any labeled strict
        // descendant is a longer route that splits the block.
        if self.has_labeled_descendant(idx) {
            None
        } else {
            Some((best != NONE).then(|| NextHop::new(best)))
        }
    }

    /// Whether any strict descendant of `idx` carries a label.
    fn has_labeled_descendant(&self, idx: u32) -> bool {
        let node = self.nodes[idx as usize];
        let mut stack = [0u32; 256];
        let mut top = 0usize;
        for child in [node.left, node.right] {
            if child != NONE {
                stack[top] = child;
                top += 1;
            }
        }
        while top > 0 {
            top -= 1;
            let n = self.nodes[stack[top] as usize];
            if n.label != NONE {
                return true;
            }
            for child in [n.left, n.right] {
                if child != NONE {
                    stack[top] = child;
                    top += 1;
                }
            }
        }
        false
    }

    /// Number of distinct canonical subtrees in the raw structure: the
    /// node count this trie occupies after hash-consing, i.e. interning
    /// every subtree on `(left, right, label)` identity. Two occurrences
    /// of a structurally identical subtree (same shape, same labels)
    /// collapse to one entry — within this trie here, and across tries in
    /// the multi-table VRF arena compiler that reuses the same canonical
    /// form.
    #[must_use]
    pub fn distinct_subtrees(&self) -> usize {
        let mut ids: std::collections::HashMap<(u32, u32, u32), u32> =
            std::collections::HashMap::new();
        self.intern_from(0, &mut ids);
        ids.len()
    }

    /// Post-order canonical-id interning of the subtree at `idx`; returns
    /// the canonical id. Recursion depth is bounded by the address width.
    fn intern_from(
        &self,
        idx: u32,
        ids: &mut std::collections::HashMap<(u32, u32, u32), u32>,
    ) -> u32 {
        let node = self.nodes[idx as usize];
        let l = if node.left == NONE {
            NONE
        } else {
            self.intern_from(node.left, ids)
        };
        let r = if node.right == NONE {
            NONE
        } else {
            self.intern_from(node.right, ids)
        };
        let next = ids.len() as u32;
        *ids.entry((l, r, node.label)).or_insert(next)
    }

    /// Canonical structural hashes of every live subtree, one entry per
    /// node, computed in a single post-order pass (children's hashes feed
    /// the parent's). Equal hashes ⇔ structurally identical subtrees, up
    /// to 64-bit collisions; the interning property tests cross-check the
    /// counts against exact `(left, right, label)` interning.
    #[must_use]
    pub fn canonical_hashes(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.node_count());
        self.hash_from(0, &mut out);
        out
    }

    /// Post-order canonical hashing; returns the hash of the subtree at
    /// `idx` and appends it (and every descendant's) to `out`.
    fn hash_from(&self, idx: u32, out: &mut Vec<u64>) -> u64 {
        let node = self.nodes[idx as usize];
        let lh = if node.left == NONE {
            CANON_ABSENT
        } else {
            self.hash_from(node.left, out)
        };
        let rh = if node.right == NONE {
            CANON_ABSENT
        } else {
            self.hash_from(node.right, out)
        };
        let h = canon_combine(lh, rh, node.label);
        out.push(h);
        h
    }

    /// Approximate heap footprint in bytes (12 bytes per arena slot).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
    }

    /// Storage under the classic BSD Patricia model the paper quotes:
    /// 24 bytes per node.
    #[must_use]
    pub fn bsd_model_bytes(&self) -> usize {
        self.node_count() * 24
    }

    #[inline]
    fn child(&self, idx: u32, bit: bool) -> u32 {
        let node = &self.nodes[idx as usize];
        if bit {
            node.right
        } else {
            node.left
        }
    }

    fn set_child(&mut self, idx: u32, bit: bool, child: u32) {
        let node = &mut self.nodes[idx as usize];
        if bit {
            node.right = child;
        } else {
            node.left = child;
        }
    }
}

impl<A: Address> FromIterator<(Prefix<A>, NextHop)> for BinaryTrie<A> {
    fn from_iter<T: IntoIterator<Item = (Prefix<A>, NextHop)>>(iter: T) -> Self {
        let mut trie = Self::new();
        for (prefix, nh) in iter {
            trie.insert(prefix, nh);
        }
        trie
    }
}

/// Sentinel hash mixed in for an absent child in canonical hashing.
const CANON_ABSENT: u64 = 0x9E37_79B9_7F4A_7C15;

/// FNV-1a-style combine of a subtree's canonical parts: left hash, right
/// hash, label. Order matters (left before right) so mirrored subtrees
/// hash differently.
fn canon_combine(left: u64, right: u64, label: u32) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for part in [left, right, u64::from(label)] {
        for shift in [0u32, 16, 32, 48] {
            h ^= (part >> shift) & 0xFFFF;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Read-only view of a [`BinaryTrie`] node, used by the leaf-pushing and
/// trie-folding algorithms to walk the structure without exposing arena
/// indices.
#[derive(Clone, Copy)]
pub struct NodeRef<'a, A: Address> {
    trie: &'a BinaryTrie<A>,
    idx: u32,
}

impl<'a, A: Address> NodeRef<'a, A> {
    /// The label on this node, if any.
    #[must_use]
    pub fn label(self) -> Option<NextHop> {
        let l = self.trie.nodes[self.idx as usize].label;
        (l != NONE).then(|| NextHop::new(l))
    }

    /// The 0-child, if present.
    #[must_use]
    pub fn left(self) -> Option<NodeRef<'a, A>> {
        let c = self.trie.nodes[self.idx as usize].left;
        (c != NONE).then_some(NodeRef {
            trie: self.trie,
            idx: c,
        })
    }

    /// The 1-child, if present.
    #[must_use]
    pub fn right(self) -> Option<NodeRef<'a, A>> {
        let c = self.trie.nodes[self.idx as usize].right;
        (c != NONE).then_some(NodeRef {
            trie: self.trie,
            idx: c,
        })
    }

    /// Whether this node has no children.
    #[must_use]
    pub fn is_leaf(self) -> bool {
        let n = &self.trie.nodes[self.idx as usize];
        n.left == NONE && n.right == NONE
    }

    /// Canonical structural hash of the subtree rooted here: equal across
    /// tries exactly when the subtrees are structurally identical (same
    /// shape and labels). This is the key the cross-table VRF interner
    /// and its property tests use to reason about shared structure.
    #[must_use]
    pub fn canonical_hash(self) -> u64 {
        let mut scratch = Vec::new();
        self.trie.hash_from(self.idx, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Prefix4, Prefix6};
    use crate::table::RouteTable;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn fig1_routes() -> Vec<(Prefix4, NextHop)> {
        vec![
            (p("0.0.0.0/0"), nh(2)),
            (p("0.0.0.0/1"), nh(3)),
            (p("0.0.0.0/2"), nh(3)),
            (p("32.0.0.0/3"), nh(2)),
            (p("64.0.0.0/2"), nh(2)),
            (p("96.0.0.0/3"), nh(1)),
        ]
    }

    #[test]
    fn fig1_lookups_match_paper() {
        let t: BinaryTrie<u32> = fig1_routes().into_iter().collect();
        assert_eq!(t.lookup(0b0111 << 28), Some(nh(1)));
        assert_eq!(t.lookup(0), Some(nh(3)));
        assert_eq!(t.lookup(0b0010 << 28), Some(nh(2)));
        assert_eq!(t.lookup(0x8000_0000), Some(nh(2)));
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn agrees_with_route_table_on_dense_small_space() {
        // Every /0../8 prefix over a few labels; checked against the oracle
        // on all 256 top-byte addresses.
        let mut routes = Vec::new();
        for len in [0u8, 3, 5, 8] {
            for i in 0..(1u32 << len) {
                let addr = i << (32 - len.max(1)) as u32;
                routes.push((Prefix4::new(addr, len), nh(i % 5)));
            }
        }
        let trie: BinaryTrie<u32> = routes.iter().copied().collect();
        let table: RouteTable<u32> = routes.iter().copied().collect();
        for top in 0..=255u32 {
            let addr = top << 24 | 0x0042_4242;
            assert_eq!(trie.lookup(addr), table.lookup(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn insert_replace_and_remove_roundtrip() {
        let mut t: BinaryTrie<u32> = BinaryTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), nh(1)), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), nh(2)), Some(nh(1)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(nh(2)));
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
        assert!(t.is_empty());
        // Pruning returns the arena to just the root.
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn remove_prunes_only_dead_branches() {
        let mut t: BinaryTrie<u32> = BinaryTrie::new();
        t.insert(p("128.0.0.0/1"), nh(1));
        t.insert(p("192.0.0.0/2"), nh(2));
        let nodes_before = t.node_count();
        t.remove(p("192.0.0.0/2"));
        assert!(t.node_count() < nodes_before);
        assert_eq!(t.lookup(0xC000_0000), Some(nh(1)), "covered by /1 still");
        t.remove(p("128.0.0.0/1"));
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn remove_keeps_interior_with_other_child() {
        let mut t: BinaryTrie<u32> = BinaryTrie::new();
        t.insert(p("0.0.0.0/2"), nh(1));
        t.insert(p("64.0.0.0/2"), nh(2));
        t.remove(p("0.0.0.0/2"));
        assert_eq!(t.lookup(0x4000_0000), Some(nh(2)));
        assert_eq!(t.lookup(0), None);
    }

    #[test]
    fn lookup_on_empty_and_default_only() {
        let mut t: BinaryTrie<u32> = BinaryTrie::new();
        assert_eq!(t.lookup(0), None);
        t.insert(p("0.0.0.0/0"), nh(9));
        assert_eq!(t.lookup(0), Some(nh(9)));
        assert_eq!(t.lookup(u32::MAX), Some(nh(9)));
    }

    #[test]
    fn host_routes_at_full_width() {
        let mut t: BinaryTrie<u32> = BinaryTrie::new();
        t.insert(p("1.2.3.4/32"), nh(1));
        t.insert(p("1.2.3.5/32"), nh(2));
        assert_eq!(
            t.lookup(u32::from(std::net::Ipv4Addr::new(1, 2, 3, 4))),
            Some(nh(1))
        );
        assert_eq!(
            t.lookup(u32::from(std::net::Ipv4Addr::new(1, 2, 3, 5))),
            Some(nh(2))
        );
        assert_eq!(
            t.lookup(u32::from(std::net::Ipv4Addr::new(1, 2, 3, 6))),
            None
        );
    }

    #[test]
    fn iter_yields_routes_in_dfs_order_and_roundtrips() {
        let routes = fig1_routes();
        let t: BinaryTrie<u32> = routes.iter().copied().collect();
        let collected: Vec<_> = t.iter().collect();
        assert_eq!(collected.len(), routes.len());
        let rebuilt: BinaryTrie<u32> = collected.into_iter().collect();
        for i in 0..64u32 {
            let addr = i << 26;
            assert_eq!(t.lookup(addr), rebuilt.lookup(addr));
        }
    }

    #[test]
    fn arena_reuses_freed_slots() {
        let mut t: BinaryTrie<u32> = BinaryTrie::new();
        t.insert(p("255.255.255.255/32"), nh(1));
        let grown = t.nodes.len();
        t.remove(p("255.255.255.255/32"));
        t.insert(p("255.255.255.254/32"), nh(2));
        assert_eq!(t.nodes.len(), grown, "free list should be reused");
    }

    #[test]
    fn ipv6_width_is_respected() {
        let mut t: BinaryTrie<u128> = BinaryTrie::new();
        let p1: Prefix6 = "2001:db8::/32".parse().unwrap();
        let p2: Prefix6 = "2001:db8:ffff::/48".parse().unwrap();
        t.insert(p1, nh(1));
        t.insert(p2, nh(2));
        let in_p2: u128 = "2001:db8:ffff::1"
            .parse::<std::net::Ipv6Addr>()
            .unwrap()
            .into();
        let in_p1: u128 = "2001:db8:1::1"
            .parse::<std::net::Ipv6Addr>()
            .unwrap()
            .into();
        let outside: u128 = "2002::1".parse::<std::net::Ipv6Addr>().unwrap().into();
        assert_eq!(t.lookup(in_p2), Some(nh(2)));
        assert_eq!(t.lookup(in_p1), Some(nh(1)));
        assert_eq!(t.lookup(outside), None);
        assert_eq!(t.max_depth(), 48);
    }

    #[test]
    fn block_resolution_agrees_with_lookup() {
        let t: BinaryTrie<u32> = fig1_routes().into_iter().collect();
        // Deepest route is /3, so every depth-3 block is pure and its
        // answer matches a pointwise lookup anywhere inside the block.
        for block in 0u32..8 {
            let base = block << 29;
            let res = t.block_resolution(base, 3);
            assert_eq!(res, Some(t.lookup(base)), "block {block}");
            assert_eq!(res, Some(t.lookup(base | 0x1FFF_FFFF)));
        }
        // A shallower block cut by a longer route is impure…
        assert_eq!(t.block_resolution(96 << 24, 2), None);
        // …while one whose walk falls off the trie early is pure.
        assert_eq!(t.block_resolution(0xFF00_0000, 8), Some(Some(nh(2))));
        // Purity flips when a longer route lands inside a block.
        let mut t = t;
        t.insert(p("96.1.0.0/16"), nh(9));
        assert_eq!(t.block_resolution(96 << 24, 8), None);
        assert_eq!(t.block_resolution(96 << 24, 16), Some(Some(nh(1))));
        assert_eq!(t.block_resolution(0x6001_0000, 16), Some(Some(nh(9))));
        // v6: pure everywhere on an empty trie (default answer None).
        let t6: BinaryTrie<u128> = BinaryTrie::new();
        assert_eq!(t6.block_resolution(0, 48), Some(None));
    }

    #[test]
    fn canonical_hash_identifies_identical_subtrees() {
        // Two disjoint branches carrying structurally identical subtrees:
        // 10.0.0.0/8 → {/16 nh 7} and 20.0.0.0/8 → {/16 nh 7} have equal
        // shapes below the /8 nodes.
        let mut t: BinaryTrie<u32> = BinaryTrie::new();
        t.insert(p("10.0.0.0/8"), nh(5));
        t.insert(p("10.0.0.0/16"), nh(7));
        t.insert(p("20.0.0.0/8"), nh(5));
        t.insert(p("20.0.0.0/16"), nh(7));
        let walk = |top: u8| {
            let mut node = t.root();
            for d in 0..8 {
                let bit = (top >> (7 - d)) & 1 == 1;
                node = if bit {
                    node.right().unwrap()
                } else {
                    node.left().unwrap()
                };
            }
            node
        };
        assert_eq!(walk(10).canonical_hash(), walk(20).canonical_hash());
        // A label change below breaks the identity.
        let mut t2 = t.clone();
        t2.insert(p("20.0.0.0/16"), nh(8));
        let walk2 = |top: u8| {
            let mut node = t2.root();
            for d in 0..8 {
                let bit = (top >> (7 - d)) & 1 == 1;
                node = if bit {
                    node.right().unwrap()
                } else {
                    node.left().unwrap()
                };
            }
            node
        };
        assert_ne!(walk2(10).canonical_hash(), walk2(20).canonical_hash());
    }

    #[test]
    fn distinct_subtrees_counts_hash_consed_nodes() {
        let mut t: BinaryTrie<u32> = BinaryTrie::new();
        assert_eq!(t.distinct_subtrees(), 1, "empty trie is one canonical node");
        // A left-spine of unlabeled nodes ending in one label: the two
        // routes below produce mirrored-but-distinct paths, while the
        // identical tails collapse.
        t.insert(p("10.0.0.0/8"), nh(1));
        t.insert(p("20.0.0.0/8"), nh(1));
        let census = t.canonical_hashes();
        let distinct: std::collections::HashSet<u64> = census.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            t.distinct_subtrees(),
            "hash census and exact interning agree"
        );
        assert!(
            t.distinct_subtrees() < t.node_count(),
            "shared tails must collapse: {} vs {}",
            t.distinct_subtrees(),
            t.node_count()
        );
    }

    #[test]
    fn canonical_hash_is_order_sensitive() {
        // left-only vs right-only single-step subtrees must differ.
        let mut a: BinaryTrie<u32> = BinaryTrie::new();
        a.insert(p("0.0.0.0/1"), nh(1));
        let mut b: BinaryTrie<u32> = BinaryTrie::new();
        b.insert(p("128.0.0.0/1"), nh(1));
        assert_ne!(a.root().canonical_hash(), b.root().canonical_hash());
    }

    #[test]
    fn node_ref_walks_structure() {
        let t: BinaryTrie<u32> = fig1_routes().into_iter().collect();
        let root = t.root();
        assert_eq!(root.label(), Some(nh(2)));
        let left = root.left().expect("0/1 exists");
        assert_eq!(left.label(), Some(nh(3)));
        assert!(root.right().is_none(), "no route under 1/1");
        assert!(!root.is_leaf());
    }
}
