//! Next-hop labels.

use std::fmt;

/// A next-hop label: an index into the router's neighbor table.
///
/// This is a symbol from the paper's alphabet Σ. Routers keep far fewer
/// neighbors than routes (δ ≪ N, typically δ = O(1) or O(polylog N)), so
/// a `u32` index is generous. The *invalid* label ⊥ (blackhole) is not a
/// `NextHop` value: APIs represent it as `Option::<NextHop>::None`, which
/// makes it impossible to forward to a blackhole by accident.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NextHop(u32);

impl NextHop {
    /// Creates a label from a neighbor-table index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The neighbor-table index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NextHop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nh{}", self.0)
    }
}

impl fmt::Debug for NextHop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nh{}", self.0)
    }
}

impl From<u32> for NextHop {
    fn from(index: u32) -> Self {
        Self(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let nh = NextHop::new(7);
        assert_eq!(nh.index(), 7);
        assert_eq!(nh.to_string(), "nh7");
        assert_eq!(NextHop::from(7u32), nh);
        assert!(NextHop::new(1) < NextHop::new(2));
    }
}
