//! Leaf-pushing: the unique normalized trie of Fig. 1(e).
//!
//! Leaf-pushing turns an arbitrary labeled binary trie into a *proper,
//! binary, leaf-labeled* trie that computes the same forwarding function:
//! labels are pushed from interior nodes down to the leaves (first pass),
//! then sibling leaves with identical labels are coalesced into their
//! parent (second pass). The result satisfies the paper's invariants
//!
//! * **P1** — every node is a leaf or has exactly two children,
//! * **P2** — exactly the leaves carry labels,
//! * **P3** — `t < 2n` (in fact `t = 2n − 1`),
//!
//! and is *unique* for a given forwarding function, which is what makes the
//! FIB information-theoretic bound and FIB entropy of Section 2 well
//! defined.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::marker::PhantomData;

use crate::addr::Address;
use crate::binary::{BinaryTrie, NodeRef};
use crate::nexthop::NextHop;

/// A node of a [`ProperTrie`]: interior nodes are unlabeled and always have
/// two children; leaves carry a label, where `None` is the invalid label ⊥
/// (address space not covered by any route).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProperNode {
    /// A leaf with its pushed-down label (`None` = ⊥).
    Leaf(Option<NextHop>),
    /// An interior node with its two children (arena indices).
    Internal {
        /// 0-subtrie.
        left: u32,
        /// 1-subtrie.
        right: u32,
    },
}

/// The leaf-pushed normal form of a FIB.
#[derive(Clone, Debug)]
pub struct ProperTrie<A: Address> {
    nodes: Vec<ProperNode>,
    root: u32,
    n_leaves: usize,
    _marker: PhantomData<A>,
}

impl<A: Address> ProperTrie<A> {
    /// Normalizes `trie` by leaf-pushing and coalescing.
    #[must_use]
    pub fn from_trie(trie: &BinaryTrie<A>) -> Self {
        let mut builder = Self {
            nodes: Vec::new(),
            root: 0,
            n_leaves: 0,
            _marker: PhantomData,
        };
        builder.root = builder.build(Some(trie.root()), None, 0);
        builder
    }

    /// Push-down and coalesce in one post-order pass.
    fn build(
        &mut self,
        node: Option<NodeRef<'_, A>>,
        inherited: Option<NextHop>,
        depth: u8,
    ) -> u32 {
        let Some(node) = node else {
            return self.push_leaf(inherited);
        };
        let effective = node.label().or(inherited);
        if node.is_leaf() || depth == A::WIDTH {
            return self.push_leaf(effective);
        }
        let left = self.build(node.left(), effective, depth + 1);
        let right = self.build(node.right(), effective, depth + 1);
        // Coalesce identical sibling leaves. When both children are leaves
        // they are the two most recently pushed nodes, so the arena can
        // simply shrink.
        if let (ProperNode::Leaf(a), ProperNode::Leaf(b)) =
            (self.nodes[left as usize], self.nodes[right as usize])
        {
            if a == b {
                debug_assert_eq!(right as usize, self.nodes.len() - 1);
                debug_assert_eq!(left as usize, self.nodes.len() - 2);
                self.nodes.truncate(self.nodes.len() - 2);
                self.n_leaves -= 2;
                return self.push_leaf(a);
            }
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(ProperNode::Internal { left, right });
        idx
    }

    fn push_leaf(&mut self, label: Option<NextHop>) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(ProperNode::Leaf(label));
        self.n_leaves += 1;
        idx
    }

    /// Number of leaves (the paper's `n`).
    #[must_use]
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Total number of nodes (the paper's `t = 2n − 1`).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Arena index of the root.
    #[must_use]
    pub fn root_idx(&self) -> u32 {
        self.root
    }

    /// The node at arena index `idx`.
    #[must_use]
    pub fn node(&self, idx: u32) -> &ProperNode {
        &self.nodes[idx as usize]
    }

    /// Longest-prefix-match lookup: walk to the unique covering leaf.
    #[must_use]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        let mut idx = self.root;
        let mut depth = 0u8;
        loop {
            match self.nodes[idx as usize] {
                ProperNode::Leaf(label) => return label,
                ProperNode::Internal { left, right } => {
                    idx = if addr.bit(depth) { right } else { left };
                    depth += 1;
                }
            }
        }
    }

    /// Lookup reporting every node touch as `(byte offset, byte size)`
    /// within the arena — the access stream for cache simulation. The
    /// normal form is a plain array of [`ProperNode`] records, so each
    /// level of the walk reads exactly one record.
    pub fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        let node_bytes = std::mem::size_of::<ProperNode>() as u64;
        let mut idx = self.root;
        let mut depth = 0u8;
        loop {
            sink(u64::from(idx) * node_bytes, node_bytes as u32);
            match self.nodes[idx as usize] {
                ProperNode::Leaf(label) => return label,
                ProperNode::Internal { left, right } => {
                    idx = if addr.bit(depth) { right } else { left };
                    depth += 1;
                }
            }
        }
    }

    /// Level-order (BFS) traversal of the nodes — the order the XBW-b
    /// transform serializes in.
    pub fn bfs(&self) -> impl Iterator<Item = &ProperNode> {
        let mut queue = VecDeque::from([self.root]);
        std::iter::from_fn(move || {
            let idx = queue.pop_front()?;
            let node = &self.nodes[idx as usize];
            if let ProperNode::Internal { left, right } = *node {
                queue.push_back(left);
                queue.push_back(right);
            }
            Some(node)
        })
    }

    /// Level-order traversal carrying each node's depth — the label
    /// context the XBW-b transform clusters by.
    pub fn bfs_with_depth(&self) -> impl Iterator<Item = (u8, &ProperNode)> {
        let mut queue = VecDeque::from([(0u8, self.root)]);
        std::iter::from_fn(move || {
            let (depth, idx) = queue.pop_front()?;
            let node = &self.nodes[idx as usize];
            if let ProperNode::Internal { left, right } = *node {
                queue.push_back((depth + 1, left));
                queue.push_back((depth + 1, right));
            }
            Some((depth, node))
        })
    }

    /// Histogram of leaf labels (the distribution whose Shannon entropy is
    /// the paper's `H0`). The invalid label ⊥ is a symbol of its own.
    #[must_use]
    pub fn leaf_label_histogram(&self) -> BTreeMap<Option<NextHop>, u64> {
        let mut hist = BTreeMap::new();
        for node in &self.nodes {
            if let ProperNode::Leaf(label) = node {
                *hist.entry(*label).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Maximum leaf depth in bits.
    #[must_use]
    pub fn max_depth(&self) -> u8 {
        let mut max = 0;
        let mut stack = vec![(self.root, 0u8)];
        while let Some((idx, depth)) = stack.pop() {
            match self.nodes[idx as usize] {
                ProperNode::Leaf(_) => max = max.max(depth),
                ProperNode::Internal { left, right } => {
                    stack.push((left, depth + 1));
                    stack.push((right, depth + 1));
                }
            }
        }
        max
    }

    /// Checks the structural invariants P1–P3 plus minimality (no two
    /// coalescible sibling leaves). Intended for tests; cheap enough to run
    /// on real FIBs.
    ///
    /// # Panics
    /// Panics with a descriptive message if an invariant is violated.
    pub fn assert_invariants(&self) {
        let t = self.node_count();
        let n = self.n_leaves();
        assert!(t == 2 * n - 1, "P3 violated: t = {t}, n = {n}");
        let mut seen_leaves = 0;
        for node in self.bfs() {
            match node {
                ProperNode::Leaf(_) => seen_leaves += 1,
                ProperNode::Internal { left, right } => {
                    if let (ProperNode::Leaf(a), ProperNode::Leaf(b)) =
                        (self.nodes[*left as usize], self.nodes[*right as usize])
                    {
                        assert_ne!(a, b, "not minimal: coalescible sibling leaves");
                    }
                }
            }
        }
        assert_eq!(seen_leaves, n, "leaf count mismatch");
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<ProperNode>()
    }

    /// Per-node `(path, depth)` spans, indexed by arena position: `path`
    /// is the root-to-node bit string MSB-aligned in a `u64` (the same
    /// alignment workload heat keys use) and `depth` is the node's depth
    /// in bits, so the node covers the address interval
    /// `[path, path + 2^(64−depth))`. Nodes deeper than 64 bits keep the
    /// top 64 path bits — heat keys never reach that deep.
    #[must_use]
    pub fn node_spans(&self) -> Vec<(u64, u8)> {
        let mut spans = vec![(0u64, 0u8); self.nodes.len()];
        let mut stack = vec![(self.root, 0u64, 0u8)];
        while let Some((idx, path, depth)) = stack.pop() {
            spans[idx as usize] = (path, depth);
            if let ProperNode::Internal { left, right } = self.nodes[idx as usize] {
                stack.push((left, path, depth + 1));
                let right_path = if depth < 64 {
                    path | 1u64 << (63 - depth)
                } else {
                    path
                };
                stack.push((right, right_path, depth + 1));
            }
        }
        spans
    }
}

/// Projects aggregated heat counts onto per-node traffic weights of a
/// leaf-pushed trie.
///
/// `spans` is [`ProperTrie::node_spans`]; `entries` are `(key, count)`
/// pairs whose keys are address prefixes MSB-aligned in a `u64` and
/// truncated to `heat_depth` bits (the workload `HeatSummary` shape). A
/// node at depth `d ≤ heat_depth` weighs the sum of all counts falling in
/// its address interval; below the measured depth the covering block's
/// mass is split uniformly (`count · 2^−(d − heat_depth)`), matching the
/// "uniform within a block" assumption heat sampling makes. Weights are
/// returned as fractions of the total count; when the total is zero the
/// uniform address-fraction distribution `2^−d` is returned instead.
#[must_use]
pub fn project_heat_weights(
    spans: &[(u64, u8)],
    entries: &[(u64, u64)],
    heat_depth: u8,
) -> Vec<f64> {
    let mut keys: Vec<(u64, u64)> = entries.iter().copied().filter(|&(_, c)| c > 0).collect();
    keys.sort_unstable_by_key(|&(k, _)| k);
    let mut prefix = Vec::with_capacity(keys.len() + 1);
    prefix.push(0u64);
    for &(_, c) in &keys {
        prefix.push(prefix.last().unwrap() + c);
    }
    let total = *prefix.last().unwrap();
    if total == 0 {
        return spans
            .iter()
            .map(|&(_, d)| 0.5f64.powi(i32::from(d)))
            .collect();
    }
    let range_sum = |lo: u64, hi_incl: u64| -> u64 {
        let a = keys.partition_point(|&(k, _)| k < lo);
        let b = keys.partition_point(|&(k, _)| k <= hi_incl);
        prefix[b] - prefix[a]
    };
    let totalf = total as f64;
    spans
        .iter()
        .map(|&(path, depth)| {
            if depth <= heat_depth {
                let hi = if depth == 0 {
                    u64::MAX
                } else {
                    path | (u64::MAX >> depth)
                };
                range_sum(path, hi) as f64 / totalf
            } else {
                let (block, hi) = if heat_depth == 0 {
                    (0, u64::MAX)
                } else {
                    let block = path & (u64::MAX << (64 - heat_depth));
                    (block, block | (u64::MAX >> heat_depth))
                };
                let mass = range_sum(block, hi) as f64 / totalf;
                mass * 0.5f64.powi(i32::from(depth - heat_depth))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn fig1_trie() -> BinaryTrie<u32> {
        [
            (p("0.0.0.0/0"), nh(2)),
            (p("0.0.0.0/1"), nh(3)),
            (p("0.0.0.0/2"), nh(3)),
            (p("32.0.0.0/3"), nh(2)),
            (p("64.0.0.0/2"), nh(2)),
            (p("96.0.0.0/3"), nh(1)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn fig1e_shape_matches_paper() {
        // The paper's Fig. 1(e): leaf-pushing the example FIB yields leaves
        // labeled 3,2,2,1 at depth 3 region and a top-level leaf 2 — in
        // total 4+1 = 5 leaves... concretely: n = 5, t = 9 (Fig. 2 shows
        // S_I of length 9 with 5 ones).
        let pt = ProperTrie::from_trie(&fig1_trie());
        pt.assert_invariants();
        assert_eq!(pt.n_leaves(), 5);
        assert_eq!(pt.node_count(), 9);
        // Leaf labels in BFS order are 2 | 3 2 2 1 per Fig. 2's S_α.
        let bfs_labels: Vec<_> = pt
            .bfs()
            .filter_map(|n| match n {
                ProperNode::Leaf(l) => Some(l.unwrap().index()),
                ProperNode::Internal { .. } => None,
            })
            .collect();
        assert_eq!(bfs_labels, vec![2, 3, 2, 2, 1]);
    }

    #[test]
    fn forwarding_equivalence_with_source_trie() {
        let trie = fig1_trie();
        let pt = ProperTrie::from_trie(&trie);
        for i in 0..=255u32 {
            let addr = i << 24 | 0x123456;
            assert_eq!(pt.lookup(addr), trie.lookup(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn empty_fib_is_a_bottom_leaf() {
        let trie: BinaryTrie<u32> = BinaryTrie::new();
        let pt = ProperTrie::from_trie(&trie);
        assert_eq!(pt.n_leaves(), 1);
        assert_eq!(pt.node_count(), 1);
        assert_eq!(pt.lookup(42), None);
        pt.assert_invariants();
    }

    #[test]
    fn default_route_only_is_a_single_leaf() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(5));
        let pt = ProperTrie::from_trie(&trie);
        assert_eq!(pt.n_leaves(), 1);
        assert_eq!(pt.lookup(0), Some(nh(5)));
        assert_eq!(pt.lookup(u32::MAX), Some(nh(5)));
    }

    #[test]
    fn redundant_more_specific_is_coalesced_away() {
        // A more-specific route with the same next-hop as its parent must
        // vanish in the normal form (this is the redundancy FIB aggregation
        // exploits).
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(1));
        trie.insert(p("10.0.0.0/8"), nh(1));
        let pt = ProperTrie::from_trie(&trie);
        assert_eq!(pt.n_leaves(), 1, "same-label specifics must coalesce");
    }

    #[test]
    fn bottom_label_appears_without_default_route() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("128.0.0.0/1"), nh(1));
        let pt = ProperTrie::from_trie(&trie);
        assert_eq!(pt.n_leaves(), 2);
        let hist = pt.leaf_label_histogram();
        assert_eq!(hist.get(&None), Some(&1), "⊥ leaf for uncovered half");
        assert_eq!(hist.get(&Some(nh(1))), Some(&1));
        assert_eq!(pt.lookup(0), None);
        assert_eq!(pt.lookup(u32::MAX), Some(nh(1)));
    }

    #[test]
    fn normal_form_is_unique_across_equivalent_fibs() {
        // Two syntactically different route sets with the same forwarding
        // function must produce identical normal forms.
        let mut a: BinaryTrie<u32> = BinaryTrie::new();
        a.insert(p("0.0.0.0/0"), nh(1));
        a.insert(p("128.0.0.0/1"), nh(2));
        let mut b: BinaryTrie<u32> = BinaryTrie::new();
        b.insert(p("0.0.0.0/1"), nh(1));
        b.insert(p("128.0.0.0/1"), nh(2));
        let pa = ProperTrie::from_trie(&a);
        let pb = ProperTrie::from_trie(&b);
        assert_eq!(pa.n_leaves(), pb.n_leaves());
        let la: Vec<_> = pa.bfs().collect();
        let lb: Vec<_> = pb.bfs().collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn host_route_pushes_to_full_depth() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(1));
        trie.insert(p("1.2.3.4/32"), nh(2));
        let pt = ProperTrie::from_trie(&trie);
        pt.assert_invariants();
        assert_eq!(pt.max_depth(), 32);
        assert_eq!(
            pt.n_leaves(),
            33,
            "one leaf per disagreeing level plus host"
        );
        assert_eq!(
            pt.lookup(u32::from(std::net::Ipv4Addr::new(1, 2, 3, 4))),
            Some(nh(2))
        );
        assert_eq!(
            pt.lookup(u32::from(std::net::Ipv4Addr::new(1, 2, 3, 5))),
            Some(nh(1))
        );
    }

    #[test]
    fn traced_lookup_matches_plain_and_counts_levels() {
        let pt = ProperTrie::from_trie(&fig1_trie());
        for addr in [0u32, 0x2000_0000, 0x6000_0000, 0x8000_0000, u32::MAX] {
            let mut touches = 0u32;
            let traced = pt.lookup_traced(addr, &mut |_, _| touches += 1);
            assert_eq!(traced, pt.lookup(addr), "addr {addr:#x}");
            assert!(touches >= 1, "the root is always read");
        }
    }

    #[test]
    fn histogram_counts_sum_to_leaves() {
        let pt = ProperTrie::from_trie(&fig1_trie());
        let hist = pt.leaf_label_histogram();
        let total: u64 = hist.values().sum();
        assert_eq!(total as usize, pt.n_leaves());
        assert_eq!(hist.get(&Some(nh(2))), Some(&3));
        assert_eq!(hist.get(&Some(nh(1))), Some(&1));
        assert_eq!(hist.get(&Some(nh(3))), Some(&1));
    }
}
