//! Addresses, prefixes, and the classic FIB representations of Section 2 of
//! *Compressing IP Forwarding Tables: Towards Entropy Bounds and Beyond*
//! (SIGCOMM 2013).
//!
//! This crate is the prefix-tree substrate the paper's compressed structures
//! are built on and compared against:
//!
//! * [`Prefix`]/[`Address`] — IPv4 (`u32`, W=32) and IPv6 (`u128`, W=128)
//!   prefixes with canonical masking and parsing,
//! * [`NextHop`] — labels from the next-hop alphabet Σ,
//! * [`RouteTable`] — the tabular FIB of Fig. 1(a): O(N) linear-scan
//!   longest-prefix match, the correctness oracle for everything else,
//! * [`BinaryTrie`] — the binary prefix tree of Fig. 1(b): O(W) lookup and
//!   update; doubles as the *control FIB* of the paper's Section 4,
//! * [`ProperTrie`] — the leaf-pushed normal form of Fig. 1(e): proper,
//!   binary, leaf-labeled, unique per forwarding function; the basis of FIB
//!   entropy and of the XBW-b transform,
//! * [`ortc`] — the ORTC optimal route-table construction of Fig. 1(c)
//!   (Draves–King–Venkatachary–Zill), a baseline FIB aggregator,
//! * [`LcTrie`] — a level-compressed multibit trie in the style of Fig. 1(d)
//!   and of the Linux kernel's `fib_trie` (Nilsson–Karlsson), the software
//!   baseline of Table 2.
//!
//! # What is deliberately omitted
//!
//! * Patricia/path-compressed unibit tries — subsumed by [`LcTrie`];
//! * tree bitmaps, hash-based schemes, DXR and other FIB layouts the paper
//!   only cites for context;
//! * the dynamic inflate/halve resizing heuristics of the kernel `fib_trie`
//!   (our [`LcTrie`] is built statically with a fill factor instead).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod binary;
pub mod io;
mod lctrie;
mod leafpush;
mod nexthop;
pub mod ortc;
pub mod stats;
mod table;

pub use addr::{Address, Depth, ParsePrefixError, Prefix, Prefix4, Prefix6};
pub use binary::{BinaryTrie, NodeRef};
pub use lctrie::{LcTrie, LcTrieRef, LC_BATCH_LANES};
pub use leafpush::{project_heat_weights, ProperNode, ProperTrie};
pub use nexthop::NextHop;
pub use table::RouteTable;
