//! Textual FIB import/export.
//!
//! The interchange format is the paper's Fig. 1(a) tabular form, one route
//! per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! 0.0.0.0/0      2
//! 10.0.0.0/8     3
//! 2001:db8::/32  1     (IPv6 works the same way)
//! ```
//!
//! i.e. `<prefix> <next-hop index>`, whitespace-separated. This is close
//! enough to `ip route` / RIB-dump exports that real tables can be pulled
//! in with a one-line `awk`.

use std::fmt;
use std::str::FromStr;

use crate::addr::{Address, ParsePrefixError, Prefix};
use crate::nexthop::NextHop;

/// Error from [`parse_routes`], carrying the offending line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRoutesError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseRoutesErrorKind,
}

/// The kinds of per-line failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseRoutesErrorKind {
    /// The prefix column did not parse.
    BadPrefix(ParsePrefixError),
    /// The next-hop column did not parse as an unsigned integer.
    BadNextHop(String),
    /// The line did not have exactly two columns.
    BadShape(String),
}

impl fmt::Display for ParseRoutesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseRoutesErrorKind::BadPrefix(e) => write!(f, "line {}: {e}", self.line),
            ParseRoutesErrorKind::BadNextHop(s) => {
                write!(f, "line {}: invalid next-hop '{s}'", self.line)
            }
            ParseRoutesErrorKind::BadShape(s) => {
                write!(
                    f,
                    "line {}: expected '<prefix> <next-hop>', got '{s}'",
                    self.line
                )
            }
        }
    }
}

impl std::error::Error for ParseRoutesError {}

/// Parses a route table in the tabular text format.
///
/// Comments start with `#` (whole-line or trailing); blank lines are
/// skipped. Duplicate prefixes are allowed — the last one wins when the
/// result is collected into a FIB, matching every other insert API here.
pub fn parse_routes<A>(text: &str) -> Result<Vec<(Prefix<A>, NextHop)>, ParseRoutesError>
where
    A: Address,
    Prefix<A>: FromStr<Err = ParsePrefixError>,
{
    let mut routes = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut cols = content.split_whitespace();
        let (Some(prefix_s), Some(hop_s), None) = (cols.next(), cols.next(), cols.next()) else {
            return Err(ParseRoutesError {
                line,
                kind: ParseRoutesErrorKind::BadShape(content.to_string()),
            });
        };
        let prefix = prefix_s
            .parse::<Prefix<A>>()
            .map_err(|e| ParseRoutesError {
                line,
                kind: ParseRoutesErrorKind::BadPrefix(e),
            })?;
        let hop = hop_s.parse::<u32>().map_err(|_| ParseRoutesError {
            line,
            kind: ParseRoutesErrorKind::BadNextHop(hop_s.to_string()),
        })?;
        routes.push((prefix, NextHop::new(hop)));
    }
    Ok(routes)
}

/// Formats routes in the tabular text format (sorted, aligned).
pub fn format_routes<A>(routes: impl IntoIterator<Item = (Prefix<A>, NextHop)>) -> String
where
    A: Address,
    Prefix<A>: fmt::Display,
{
    let mut entries: Vec<(Prefix<A>, NextHop)> = routes.into_iter().collect();
    entries.sort_unstable_by_key(|&(p, _)| (p.addr(), p.len()));
    let width = entries
        .iter()
        .map(|(p, _)| p.to_string().len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (p, nh) in entries {
        out.push_str(&format!("{:<width$} {}\n", p.to_string(), nh.index()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::BinaryTrie;

    #[test]
    fn parse_basic_table() {
        let text = "\
# a tiny FIB
0.0.0.0/0    2
10.0.0.0/8   3   # trailing comment

96.0.0.0/3   1
";
        let routes = parse_routes::<u32>(text).unwrap();
        assert_eq!(routes.len(), 3);
        assert_eq!(routes[1].0.to_string(), "10.0.0.0/8");
        assert_eq!(routes[1].1, NextHop::new(3));
    }

    #[test]
    fn roundtrip_through_format() {
        let text = "10.0.0.0/8 1\n0.0.0.0/0 2\n10.128.0.0/9 3\n";
        let routes = parse_routes::<u32>(text).unwrap();
        let formatted = format_routes(routes.iter().copied());
        let reparsed = parse_routes::<u32>(&formatted).unwrap();
        let a: BinaryTrie<u32> = routes.into_iter().collect();
        let b: BinaryTrie<u32> = reparsed.into_iter().collect();
        for i in 0..1000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(a.lookup(addr), b.lookup(addr));
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_routes::<u32>("0.0.0.0/0 1\nbanana 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseRoutesErrorKind::BadPrefix(_)));

        let err = parse_routes::<u32>("\n\n1.0.0.0/8 x\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(matches!(err.kind, ParseRoutesErrorKind::BadNextHop(_)));

        let err = parse_routes::<u32>("1.0.0.0/8 1 extra\n").unwrap_err();
        assert!(matches!(err.kind, ParseRoutesErrorKind::BadShape(_)));

        let err = parse_routes::<u32>("1.0.0.0/8\n").unwrap_err();
        assert!(matches!(err.kind, ParseRoutesErrorKind::BadShape(_)));
    }

    #[test]
    fn ipv6_tables_parse() {
        let text = "::/0 1\n2001:db8::/32 2\n";
        let routes = parse_routes::<u128>(text).unwrap();
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[1].0.to_string(), "2001:db8::/32");
    }

    #[test]
    fn empty_and_comment_only_inputs() {
        assert!(parse_routes::<u32>("").unwrap().is_empty());
        assert!(parse_routes::<u32>("# nothing\n   \n#more\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn error_display_is_informative() {
        let err = parse_routes::<u32>("zzz 1\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }
}
