//! The tabular FIB of Fig. 1(a): a flat route list with linear-scan
//! longest-prefix match.

use std::collections::HashMap;

use crate::addr::{Address, Prefix};
use crate::nexthop::NextHop;

/// A flat (prefix → next-hop) table.
///
/// Lookup is O(N) — the paper's strawman — but the representation is
/// trivially correct, which makes it the oracle every compressed structure
/// is differentially tested against. Storage under the paper's model is
/// `(W + lg δ)·N` bits, per Section 2; the prefix-keyed index is an
/// implementation aid (it keeps building an N-route oracle O(N) instead of
/// O(N²)) and is deliberately not part of the modeled size.
#[derive(Clone, Debug, Default)]
pub struct RouteTable<A: Address> {
    routes: Vec<(Prefix<A>, NextHop)>,
    /// Position of each prefix in `routes`.
    index: HashMap<Prefix<A>, usize>,
}

impl<A: Address> RouteTable<A> {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            routes: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Inserts or replaces the route for `prefix`, returning the previous
    /// next-hop if one existed. O(1) expected.
    pub fn insert(&mut self, prefix: Prefix<A>, next_hop: NextHop) -> Option<NextHop> {
        if let Some(&pos) = self.index.get(&prefix) {
            return Some(std::mem::replace(&mut self.routes[pos].1, next_hop));
        }
        self.index.insert(prefix, self.routes.len());
        self.routes.push((prefix, next_hop));
        None
    }

    /// Removes the route for `prefix`, returning its next-hop. O(1)
    /// expected.
    pub fn remove(&mut self, prefix: Prefix<A>) -> Option<NextHop> {
        let pos = self.index.remove(&prefix)?;
        let removed = self.routes.swap_remove(pos);
        if let Some(moved) = self.routes.get(pos) {
            self.index.insert(moved.0, pos);
        }
        Some(removed.1)
    }

    /// The next-hop registered for exactly `prefix`, if any.
    #[must_use]
    pub fn exact_match(&self, prefix: Prefix<A>) -> Option<NextHop> {
        self.index.get(&prefix).map(|&pos| self.routes[pos].1)
    }

    /// Longest-prefix-match lookup: scans every entry, keeps the most
    /// specific match.
    #[must_use]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        let mut best: Option<(u8, NextHop)> = None;
        for &(prefix, nh) in &self.routes {
            if prefix.contains(addr) && best.is_none_or(|(len, _)| prefix.len() >= len) {
                best = Some((prefix.len(), nh));
            }
        }
        best.map(|(_, nh)| nh)
    }

    /// Iterates over the routes in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix<A>, NextHop)> + '_ {
        self.routes.iter().copied()
    }

    /// Storage size in bits under the paper's tabular model:
    /// `(W + lg δ)·N` where δ is the number of distinct next-hops.
    #[must_use]
    pub fn model_size_bits(&self) -> usize {
        let delta = {
            let mut hops: Vec<u32> = self.routes.iter().map(|e| e.1.index()).collect(); // fibcheck: allow(hot-path): control-plane size model, not on the lookup walk
            hops.sort_unstable();
            hops.dedup();
            hops.len() as u64
        };
        self.routes.len() * (A::WIDTH as usize + fib_succinct_compat_lg(delta))
    }
}

/// `⌈lg x⌉` without depending on fib-succinct from this substrate crate.
fn fib_succinct_compat_lg(count: u64) -> usize {
    if count <= 1 {
        0
    } else {
        (64 - (count - 1).leading_zeros()) as usize
    }
}

impl<A: Address> FromIterator<(Prefix<A>, NextHop)> for RouteTable<A> {
    fn from_iter<T: IntoIterator<Item = (Prefix<A>, NextHop)>>(iter: T) -> Self {
        let mut table = Self::new();
        for (prefix, nh) in iter {
            table.insert(prefix, nh);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    /// The running example of Fig. 1 in the paper (W truncated to 32 here;
    /// the figure uses 4-bit addresses, we scale the prefixes up).
    fn fig1_table() -> RouteTable<u32> {
        let mut t = RouteTable::new();
        t.insert(p("0.0.0.0/0"), nh(2));
        t.insert(p("0.0.0.0/1"), nh(3));
        t.insert(p("0.0.0.0/2"), nh(3));
        t.insert(p("32.0.0.0/3"), nh(2));
        t.insert(p("64.0.0.0/2"), nh(2));
        t.insert(p("96.0.0.0/3"), nh(1));
        t
    }

    #[test]
    fn longest_match_wins() {
        let t = fig1_table();
        // 0111... → matches -/0, 0/1, 01/2, 011/3 → most specific gives 1.
        assert_eq!(t.lookup(0b0111 << 28), Some(nh(1)));
        // 000... → 00/2 → 3.
        assert_eq!(t.lookup(0), Some(nh(3)));
        // 0010... → 001/3 → 2.
        assert_eq!(t.lookup(0b0010 << 28), Some(nh(2)));
        // 1... → only the default route.
        assert_eq!(t.lookup(0x8000_0000), Some(nh(2)));
    }

    #[test]
    fn empty_table_returns_none() {
        let t: RouteTable<u32> = RouteTable::new();
        assert_eq!(t.lookup(123), None);
    }

    #[test]
    fn no_default_route_leaves_gaps() {
        let mut t = RouteTable::new();
        t.insert(p("10.0.0.0/8"), nh(1));
        assert_eq!(
            t.lookup(u32::from(std::net::Ipv4Addr::new(10, 1, 1, 1))),
            Some(nh(1))
        );
        assert_eq!(
            t.lookup(u32::from(std::net::Ipv4Addr::new(11, 1, 1, 1))),
            None
        );
    }

    #[test]
    fn insert_replaces_and_remove_deletes() {
        let mut t = fig1_table();
        assert_eq!(t.insert(p("0.0.0.0/0"), nh(9)), Some(nh(2)));
        assert_eq!(t.lookup(0x8000_0000), Some(nh(9)));
        assert_eq!(t.remove(p("0.0.0.0/0")), Some(nh(9)));
        assert_eq!(t.lookup(0x8000_0000), None);
        assert_eq!(t.remove(p("0.0.0.0/0")), None);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn exact_match_distinguishes_lengths() {
        let t = fig1_table();
        assert_eq!(t.exact_match(p("0.0.0.0/1")), Some(nh(3)));
        assert_eq!(t.exact_match(p("0.0.0.0/3")), None);
    }

    #[test]
    fn model_size_matches_formula() {
        let t = fig1_table();
        // N = 6, W = 32, δ = 3 → lg 3 = 2 bits → 6 * 34 = 204.
        assert_eq!(t.model_size_bits(), 204);
    }

    #[test]
    fn index_survives_interleaved_insert_remove() {
        // Deterministic churn mirroring what the differential suites do at
        // scale; the index must stay in sync with the route vector through
        // swap_remove reshuffling.
        let mut t: RouteTable<u32> = RouteTable::new();
        let mut x: u64 = 0x0123_4567_89AB_CDEF;
        let mut live: Vec<(Prefix4, NextHop)> = Vec::new();
        for _ in 0..2_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 3 != 0 || live.is_empty() {
                let p = Prefix4::new((x >> 32) as u32, (x % 33) as u8);
                let hop = nh((x % 11) as u32);
                if t.insert(p, hop).is_none() {
                    live.push((p, hop));
                } else if let Some(e) = live.iter_mut().find(|e| e.0 == p) {
                    e.1 = hop;
                }
            } else {
                let (p, hop) = live.swap_remove((x as usize) % live.len());
                assert_eq!(t.remove(p), Some(hop), "remove {p}");
            }
        }
        assert_eq!(t.len(), live.len());
        for (p, hop) in &live {
            assert_eq!(t.exact_match(*p), Some(*hop), "exact {p}");
        }
    }

    #[test]
    fn collects_from_iterator_with_replacement() {
        let t: RouteTable<u32> = [(p("1.0.0.0/8"), nh(1)), (p("1.0.0.0/8"), nh(2))]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 1);
        assert_eq!(t.exact_match(p("1.0.0.0/8")), Some(nh(2)));
    }
}
