//! A level-compressed multibit trie (Fig. 1(d)) in the style of the Linux
//! kernel's `fib_trie` (Nilsson–Karlsson LC-tries).
//!
//! Level compression replaces the top `k` levels of a dense subtrie with a
//! single 2^k-way branch node, cutting lookup depth from O(W) to a few
//! memory accesses. This is the *fast but big* software baseline of the
//! paper's Table 2: the kernel's variant spends tens of megabytes on a
//! DFZ-sized FIB and therefore runs out of CPU cache — which is precisely
//! the effect the paper's compressed structures eliminate.
//!
//! The structure is built statically from the leaf-pushed normal form with
//! a configurable *fill factor*: a node adopts stride `k` as long as at
//! least `fill·2^k` of the depth-`k` descendants are real (the rest
//! duplicate covering leaves), mirroring (statically) the kernel's
//! inflate/halve heuristics.
//!
//! Storage is one packed `u64` per node (leaf tag + label, or stride +
//! child base), so the whole arena is a flat word string: the owned
//! [`LcTrie`] and the zero-copy [`LcTrieRef`] — which FIB images borrow
//! straight out of a loaded buffer — run the identical lookup code over
//! the same encoding.

use std::marker::PhantomData;

use fib_succinct::simd::gather4;

use crate::addr::{Address, Depth};
use crate::binary::BinaryTrie;
use crate::leafpush::{ProperNode, ProperTrie};
use crate::nexthop::NextHop;

/// Number of lookups [`LcTrie::lookup_batch`] walks in lockstep.
pub const LC_BATCH_LANES: usize = 4;

/// Packed node encoding: bit 63 tags a leaf; a leaf stores `label + 1` in
/// the low 33 bits (0 = no route); a branch stores the stride in bits
/// 32–39 and the child base index in the low 32 bits. Children of a
/// branch always live at higher indices than the branch itself, which is
/// what makes the walk on untrusted (image-loaded) words terminate.
const LEAF_TAG: u64 = 1 << 63;

#[inline]
fn pack_leaf(label: Option<NextHop>) -> u64 {
    LEAF_TAG | label.map_or(0, |nh| u64::from(nh.index()) + 1)
}

#[inline]
fn unpack_leaf(word: u64) -> Option<NextHop> {
    let raw = word & !LEAF_TAG;
    if raw == 0 {
        None
    } else {
        Some(NextHop::new((raw - 1) as u32))
    }
}

#[inline]
fn pack_branch(bits: u8, base: u32) -> u64 {
    (u64::from(bits) << 32) | u64::from(base)
}

/// A static level-compressed multibit trie (owned builder).
#[derive(Clone, Debug)]
pub struct LcTrie<A: Address> {
    nodes: Vec<u64>,
    root: u32,
    max_stride: u8,
    _marker: PhantomData<A>,
}

/// Borrowed zero-copy view of an [`LcTrie`]'s packed node words: the
/// query surface over owned or image-loaded memory.
#[derive(Clone, Copy, Debug)]
pub struct LcTrieRef<'a, A: Address> {
    nodes: &'a [u64],
    root: u32,
    _marker: PhantomData<A>,
}

impl<A: Address> LcTrie<A> {
    /// Builds from a route trie with the default parameters (fill factor
    /// 1/2, maximum stride 12 — the size the kernel's dynamically resized
    /// root typically reaches on a DFZ table).
    #[must_use]
    pub fn from_trie(trie: &BinaryTrie<A>) -> Self {
        Self::with_params(trie, 0.5, 12)
    }

    /// Builds with an explicit fill factor in `(0, 1]` and maximum stride.
    ///
    /// # Panics
    /// Panics if `fill` is not in `(0, 1]` or `max_stride == 0`.
    #[must_use]
    pub fn with_params(trie: &BinaryTrie<A>, fill: f64, max_stride: u8) -> Self {
        assert!(fill > 0.0 && fill <= 1.0, "fill factor {fill} out of (0,1]");
        assert!(max_stride >= 1, "max_stride must be at least 1");
        let proper = ProperTrie::from_trie(trie);
        let mut lc = Self {
            nodes: Vec::new(),
            root: 0,
            max_stride,
            _marker: PhantomData,
        };
        // Reserve the root slot, then fill it.
        lc.nodes.push(pack_leaf(None));
        let built = lc.build(&proper, proper.root_idx(), fill);
        lc.nodes[0] = built;
        lc
    }

    /// Builds the packed node for proper-trie node `idx`; children of
    /// branch nodes are appended contiguously (always above their parent).
    fn build(&mut self, proper: &ProperTrie<A>, idx: u32, fill: f64) -> u64 {
        match *proper.node(idx) {
            ProperNode::Leaf(label) => pack_leaf(label),
            ProperNode::Internal { .. } => {
                let bits = self.choose_stride(proper, idx, fill);
                let width = 1usize << bits;
                let base = self.nodes.len() as u32;
                // Reserve the contiguous child array first.
                self.nodes
                    .extend(std::iter::repeat_n(pack_leaf(None), width));
                for slot in 0..width {
                    let child = self.descend(proper, idx, slot as u32, bits);
                    self.nodes[base as usize + slot] = match child {
                        Descend::Reached(node_idx) => self.build(proper, node_idx, fill),
                        Descend::CutShort(label) => pack_leaf(label),
                    };
                }
                pack_branch(bits, base)
            }
        }
    }

    /// Largest stride `k` such that at least `fill·2^k` of the depth-`k`
    /// descendant slots below `idx` reach a real node.
    ///
    /// A slot reaches a real node at depth `k` exactly when its `k`-bit
    /// path stays on internal nodes for the first `k−1` steps, so the
    /// depth-`k` population is `2 ×` the number of *internal* nodes at
    /// depth `k−1`. That frontier is computed incrementally level by
    /// level (each candidate extends the previous candidate's frontier)
    /// instead of re-walking all `2^k` slot paths per candidate, which
    /// made wide-stride builds quadratic in the fanout.
    fn choose_stride(&self, proper: &ProperTrie<A>, idx: u32, fill: f64) -> u8 {
        let mut best = 1u8;
        // Internal nodes at depth k−1 below `idx` (k starts at 2).
        let mut frontier: Vec<u32> = match *proper.node(idx) {
            ProperNode::Leaf(_) => return best,
            ProperNode::Internal { left, right } => [left, right]
                .into_iter()
                .filter(|&c| matches!(proper.node(c), ProperNode::Internal { .. }))
                .collect(),
        };
        for k in 2..=self.max_stride {
            let width = 1u32 << k;
            let needed = (fill * f64::from(width)).ceil() as u32;
            let reached = 2 * frontier.len() as u32;
            if reached >= needed {
                best = k;
            } else {
                break;
            }
            // Advance the frontier to depth k for the next candidate.
            frontier = frontier
                .iter()
                .flat_map(|&f| match *proper.node(f) {
                    ProperNode::Internal { left, right } => [left, right],
                    ProperNode::Leaf(_) => unreachable!("frontier holds internal nodes"),
                })
                .filter(|&c| matches!(proper.node(c), ProperNode::Internal { .. }))
                .collect();
        }
        best
    }

    /// Walks `k` bits (the bits of `slot`, MSB first) down from `idx`.
    fn descend(&self, proper: &ProperTrie<A>, mut idx: u32, slot: u32, k: u8) -> Descend {
        for depth in 0..k {
            match *proper.node(idx) {
                ProperNode::Leaf(label) => return Descend::CutShort(label),
                ProperNode::Internal { left, right } => {
                    let bit = (slot >> (k - 1 - depth)) & 1 == 1;
                    idx = if bit { right } else { left };
                }
            }
        }
        Descend::Reached(idx)
    }

    /// The borrowed view all queries run on.
    #[must_use]
    #[inline]
    pub fn view(&self) -> LcTrieRef<'_, A> {
        LcTrieRef {
            nodes: &self.nodes,
            root: self.root,
            _marker: PhantomData,
        }
    }

    /// The packed node words (one per node). Serialize these plus
    /// [`Self::root`] offsets to persist the trie; rebuild a queryable
    /// view with [`LcTrieRef::from_parts`].
    #[must_use]
    pub fn packed_nodes(&self) -> &[u64] {
        &self.nodes
    }

    /// Index of the root node.
    #[must_use]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Longest-prefix-match lookup.
    #[must_use]
    #[inline]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        self.view().lookup(addr)
    }

    /// Lookup returning the number of branch nodes traversed (the paper's
    /// Table 2 "depth").
    #[must_use]
    pub fn lookup_with_depth(&self, addr: A) -> (Option<NextHop>, Depth) {
        self.view().lookup_with_depth(addr)
    }

    /// Batched longest-prefix match: resolves `addrs[i]` into `out[i]`,
    /// walking [`LC_BATCH_LANES`] addresses in lockstep so the independent
    /// branch-node fetches of different packets overlap in the memory
    /// pipeline instead of serializing behind one another.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        self.view().lookup_batch(addrs, out);
    }

    /// Prefetches the first branch target of `addr`'s walk (see
    /// [`LcTrieRef::prefetch`]).
    #[inline]
    pub fn prefetch(&self, addr: A) {
        self.view().prefetch(addr);
    }

    /// Software-pipelined batched lookup (see
    /// [`LcTrieRef::lookup_stream`]).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        self.view().lookup_stream(addrs, out);
    }

    /// Lookup reporting every node touch as `(byte offset, byte size)`
    /// within the arena — the access stream for cache simulation.
    pub fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        self.view().lookup_traced(addr, sink)
    }

    /// Like [`Self::lookup_traced`], but with accesses laid out as the
    /// *kernel* structure would be in memory: 40-byte node records (struct
    /// header, alias list, next-hop info) instead of this crate's packed
    /// 8-byte slots. This is the access stream to feed a cache simulator
    /// when modeling the paper's 26 MB in-kernel `fib_trie`.
    pub fn lookup_traced_kernel(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        const KERNEL_NODE_BYTES: u64 = 40;
        let mut idx = self.root;
        let mut offset = 0u8;
        loop {
            sink(u64::from(idx) * KERNEL_NODE_BYTES, KERNEL_NODE_BYTES as u32);
            let word = self.nodes[idx as usize];
            if word & LEAF_TAG != 0 {
                return unpack_leaf(word);
            }
            let bits = ((word >> 32) & 0xFF) as u8;
            idx = (word as u32) + addr.bits(offset, bits);
            offset += bits;
        }
    }

    /// Number of nodes (branch slots included).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Average and maximum traversal depth (branch hops) over the address
    /// space, weighting each leaf by the fraction of addresses it covers.
    #[must_use]
    pub fn depth_stats(&self) -> (f64, u32) {
        let mut avg = 0.0;
        let mut max = 0u32;
        // (node, hops, fraction of address space)
        let mut stack = vec![(self.root, 0u32, 1.0f64)];
        while let Some((idx, hops, frac)) = stack.pop() {
            let word = self.nodes[idx as usize];
            if word & LEAF_TAG != 0 {
                avg += f64::from(hops) * frac;
                max = max.max(hops);
            } else {
                let bits = ((word >> 32) & 0xFF) as u32;
                let base = word as u32;
                let child_frac = frac / f64::from(1u32 << bits);
                for slot in 0..(1u32 << bits) {
                    stack.push((base + slot, hops + 1, child_frac));
                }
            }
        }
        (avg, max)
    }

    /// Actual arena footprint in bytes (8 per packed node).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * 8
    }

    /// Footprint under a kernel-like memory model: 40 bytes per leaf (a
    /// `struct leaf` plus a `fib_alias`/`fib_info` share) and `32 + 8·2^k`
    /// bytes per 2^k-way tnode (struct header plus one 8-byte pointer per
    /// child). This is the model behind the 26 MB `fib_trie` figure the
    /// paper reports for a 410 K-prefix FIB.
    #[must_use]
    pub fn kernel_model_bytes(&self) -> usize {
        let mut total = 0usize;
        for &word in &self.nodes {
            total += if word & LEAF_TAG != 0 {
                40
            } else {
                32 + 8 * (1usize << ((word >> 32) & 0xFF))
            };
        }
        total
    }

    #[doc(hidden)]
    #[must_use]
    pub fn root_is_branch(&self) -> bool {
        self.nodes[self.root as usize] & LEAF_TAG == 0
    }
}

impl<'a, A: Address> LcTrieRef<'a, A> {
    /// Assembles a view over packed node words, validating the encoding so
    /// the walk can neither loop nor index out of bounds: every branch's
    /// child array must lie fully inside `nodes` and strictly above the
    /// branch itself, and strides must fit the address width.
    ///
    /// # Errors
    /// A static message naming the structural violation.
    pub fn from_parts(nodes: &'a [u64], root: u32) -> Result<Self, &'static str> {
        let view = Self::from_parts_trusted(nodes, root)?;
        for (idx, &word) in nodes.iter().enumerate() {
            if word & LEAF_TAG != 0 {
                continue;
            }
            let bits = (word >> 32) & 0xFF;
            let base = (word as u32) as usize;
            if bits == 0 || bits > u64::from(A::WIDTH) {
                return Err("lc-trie stride out of range");
            }
            let width = 1usize << bits;
            if base <= idx || base.saturating_add(width) > nodes.len() {
                return Err("lc-trie child array out of range");
            }
        }
        Ok(view)
    }

    /// [`Self::from_parts`] minus the O(n) node scan — only for words
    /// that already passed a full validation (the scan is what proves the
    /// walk terminates, so a loaded image must run it once; images are
    /// immutable after load, so once is enough).
    pub fn from_parts_trusted(nodes: &'a [u64], root: u32) -> Result<Self, &'static str> {
        if nodes.is_empty() {
            return Err("lc-trie has no nodes");
        }
        if root as usize >= nodes.len() {
            return Err("lc-trie root out of range");
        }
        Ok(Self {
            nodes,
            root,
            _marker: PhantomData,
        })
    }

    /// The pointer range of the borrowed node words, for zero-copy
    /// assertions in tests.
    #[must_use]
    pub fn payload_ptr_range(&self) -> std::ops::Range<usize> {
        let start = self.nodes.as_ptr() as usize;
        start..start + std::mem::size_of_val(self.nodes)
    }

    /// Longest-prefix-match lookup.
    #[must_use]
    #[inline]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        let mut idx = self.root;
        let mut offset = 0u8;
        loop {
            let word = self.nodes[idx as usize];
            if word & LEAF_TAG != 0 {
                return unpack_leaf(word);
            }
            let bits = ((word >> 32) & 0xFF) as u8;
            idx = (word as u32) + addr.bits(offset, bits);
            offset += bits;
        }
    }

    /// Lookup returning the number of branch nodes traversed.
    #[must_use]
    pub fn lookup_with_depth(&self, addr: A) -> (Option<NextHop>, Depth) {
        let mut idx = self.root;
        let mut offset = 0u8;
        let mut hops: Depth = 0;
        loop {
            let word = self.nodes[idx as usize];
            if word & LEAF_TAG != 0 {
                return (unpack_leaf(word), hops);
            }
            let bits = ((word >> 32) & 0xFF) as u8;
            idx = (word as u32) + addr.bits(offset, bits);
            offset += bits;
            hops += 1;
        }
    }

    /// Batched longest-prefix match (see [`LcTrie::lookup_batch`]).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
                                                                      // Trim so the exact-chunk remainders of both slices stay aligned
                                                                      // when the caller hands in an oversized output buffer.
        let out = &mut out[..addrs.len()];
        // A cache-resident arena has no misses for the lockstep walk (or
        // its gathers) to overlap — lane bookkeeping is pure overhead
        // there, so small tries walk scalar, like the stream path's
        // prefetch gate below.
        if self.size_bytes() < fib_succinct::mem::PREFETCH_WORTHWHILE_BYTES {
            for (addr, slot) in addrs.iter().zip(out.iter_mut()) {
                *slot = self.lookup(*addr);
            }
            return;
        }
        let mut chunks = addrs.chunks_exact(LC_BATCH_LANES);
        let mut outs = out.chunks_exact_mut(LC_BATCH_LANES);
        for (chunk, slot) in (&mut chunks).zip(&mut outs) {
            self.resolve_lanes(chunk, slot);
        }
        for (addr, slot) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *slot = self.lookup(*addr);
        }
    }

    /// Prefetches the first branch target of `addr`'s walk. The root node
    /// itself is one word that every lookup touches (always resident);
    /// its child index is what actually varies per address, so that is
    /// the line worth requesting early.
    #[inline]
    pub fn prefetch(&self, addr: A) {
        let word = self.nodes[self.root as usize];
        if word & LEAF_TAG == 0 {
            let bits = ((word >> 32) & 0xFF) as u8;
            let idx = (word as u32) + addr.bits(0, bits);
            fib_succinct::mem::prefetch_index(self.nodes, idx as usize);
        }
    }

    /// Software-pipelined batched lookup: identical results to
    /// [`Self::lookup_batch`], with the next [`LC_BATCH_LANES`]-lane
    /// group's first branch lines prefetched while the current group
    /// walks.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        // Below the residency threshold the whole structure lives in
        // cache and the prefetch stage is pure overhead — identical
        // results either way, so take the plain interleaved path.
        if self.size_bytes() < fib_succinct::mem::PREFETCH_WORTHWHILE_BYTES {
            return self.lookup_batch(addrs, out);
        }
        fib_succinct::mem::pipelined_stream(
            LC_BATCH_LANES,
            addrs,
            out,
            |addr| self.prefetch(addr),
            |chunk, slot| self.resolve_lanes(chunk, slot),
            |addr, slot| *slot = self.lookup(addr),
        );
    }

    /// One lockstep [`LC_BATCH_LANES`]-lane group: the shared kernel of
    /// [`Self::lookup_batch`] and [`Self::lookup_stream`]. Both slices
    /// must be exactly [`LC_BATCH_LANES`] long.
    #[inline]
    fn resolve_lanes(&self, chunk: &[A], slot: &mut [Option<NextHop>]) {
        // One walk state per lane; a lane parks on its answer when it
        // reaches a leaf while the others keep stepping. Each step reads
        // all four lanes' node words with one SIMD gather (scalar
        // fallback inside `gather4`); parked lanes re-read node 0.
        let mut idx = [self.root; LC_BATCH_LANES];
        let mut offset = [0u8; LC_BATCH_LANES];
        let mut done = [false; LC_BATCH_LANES];
        let mut live = LC_BATCH_LANES;
        while live > 0 {
            let mut gidx = [0u64; LC_BATCH_LANES];
            for lane in 0..LC_BATCH_LANES {
                if !done[lane] {
                    gidx[lane] = u64::from(idx[lane]);
                }
            }
            let words = gather4(self.nodes, gidx);
            for lane in 0..LC_BATCH_LANES {
                if done[lane] {
                    continue;
                }
                let word = words[lane];
                if word & LEAF_TAG != 0 {
                    slot[lane] = unpack_leaf(word);
                    done[lane] = true;
                    live -= 1;
                } else {
                    let bits = ((word >> 32) & 0xFF) as u8;
                    idx[lane] = (word as u32) + chunk[lane].bits(offset[lane], bits);
                    offset[lane] += bits;
                }
            }
        }
    }

    /// Lookup reporting every node touch as `(byte offset, byte size)`
    /// within the arena — the access stream for cache simulation.
    pub fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        let mut idx = self.root;
        let mut offset = 0u8;
        loop {
            sink(u64::from(idx) * 8, 8);
            let word = self.nodes[idx as usize];
            if word & LEAF_TAG != 0 {
                return unpack_leaf(word);
            }
            let bits = ((word >> 32) & 0xFF) as u8;
            idx = (word as u32) + addr.bits(offset, bits);
            offset += bits;
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Arena footprint in bytes (8 per packed node).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * 8
    }
}

enum Descend {
    /// The slot reaches a real node at exactly depth `k`.
    Reached(u32),
    /// The walk hit a leaf early; the slot duplicates that leaf's label.
    CutShort(Option<NextHop>),
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn fig1_trie() -> BinaryTrie<u32> {
        [
            (p("0.0.0.0/0"), nh(2)),
            (p("0.0.0.0/1"), nh(3)),
            (p("0.0.0.0/2"), nh(3)),
            (p("32.0.0.0/3"), nh(2)),
            (p("64.0.0.0/2"), nh(2)),
            (p("96.0.0.0/3"), nh(1)),
        ]
        .into_iter()
        .collect()
    }

    fn assert_equivalent(trie: &BinaryTrie<u32>, lc: &LcTrie<u32>, samples: u32) {
        for i in 0..samples {
            let addr = i.wrapping_mul(0x9E37_79B9) ^ (i << 3);
            assert_eq!(lc.lookup(addr), trie.lookup(addr), "addr {addr:#x}");
        }
        for top in 0..=255u32 {
            let addr = top << 24 | 0xFFFF;
            assert_eq!(lc.lookup(addr), trie.lookup(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn fig1_equivalence_all_fill_factors() {
        let trie = fig1_trie();
        for fill in [0.25, 0.5, 1.0] {
            let lc = LcTrie::with_params(&trie, fill, 16);
            assert_equivalent(&trie, &lc, 2000);
        }
    }

    #[test]
    fn fig1d_full_fill_compresses_levels() {
        // With fill = 1.0 the example's top is a complete depth-2 subtree
        // (after leaf-pushing): Fig. 1(d) shows a 4-way root branch.
        let trie = fig1_trie();
        let lc = LcTrie::with_params(&trie, 1.0, 16);
        assert!(lc.root_is_branch());
        let (avg, max) = lc.depth_stats();
        assert!(max <= 3, "example trie must flatten, max depth {max}");
        assert!(avg >= 1.0);
    }

    #[test]
    fn empty_and_default_only() {
        let trie: BinaryTrie<u32> = BinaryTrie::new();
        let lc = LcTrie::from_trie(&trie);
        assert_eq!(lc.lookup(123), None);
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(4));
        let lc = LcTrie::from_trie(&trie);
        assert_eq!(lc.lookup(123), Some(nh(4)));
        let (avg, max) = lc.depth_stats();
        assert_eq!(avg, 0.0);
        assert_eq!(max, 0);
    }

    #[test]
    fn dense_fib_gets_wide_root() {
        // 256 /8 routes: the root should adopt a wide stride.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        for i in 0..256u32 {
            trie.insert(Prefix4::new(i << 24, 8), nh(i % 4));
        }
        let lc = LcTrie::with_params(&trie, 1.0, 16);
        assert_equivalent(&trie, &lc, 4000);
        let (avg, _) = lc.depth_stats();
        assert!(avg <= 1.5, "dense top should flatten to ~1 hop, got {avg}");
    }

    #[test]
    fn sparse_deep_fib_still_correct() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(0));
        trie.insert(p("10.1.2.0/24"), nh(1));
        trie.insert(p("10.1.2.128/25"), nh(2));
        trie.insert(p("10.1.3.0/32"), nh(3));
        let lc = LcTrie::from_trie(&trie);
        assert_equivalent(&trie, &lc, 2000);
        assert_eq!(
            lc.lookup(u32::from(std::net::Ipv4Addr::new(10, 1, 2, 200))),
            Some(nh(2))
        );
        assert_eq!(
            lc.lookup(u32::from(std::net::Ipv4Addr::new(10, 1, 3, 0))),
            Some(nh(3))
        );
        assert_eq!(
            lc.lookup(u32::from(std::net::Ipv4Addr::new(10, 1, 3, 1))),
            Some(nh(0))
        );
    }

    #[test]
    fn kernel_model_dwarfs_actual_size() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        for i in 0..512u32 {
            trie.insert(Prefix4::new(i << 23, 9), nh(i % 3));
        }
        let lc = LcTrie::from_trie(&trie);
        assert!(lc.kernel_model_bytes() > lc.size_bytes());
    }

    #[test]
    fn pseudorandom_equivalence_with_various_strides() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            trie.insert(
                Prefix4::new((x >> 32) as u32, (x % 33) as u8),
                nh((x % 6) as u32),
            );
        }
        for max_stride in [1u8, 4, 8, 16] {
            let lc = LcTrie::with_params(&trie, 0.5, max_stride);
            assert_equivalent(&trie, &lc, 3000);
        }
    }

    #[test]
    fn batch_lookup_matches_scalar() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        let mut x: u64 = 0xFEED_FACE_CAFE_BEEF;
        for _ in 0..400 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            trie.insert(
                Prefix4::new((x >> 32) as u32, (x % 33) as u8),
                nh((x % 7) as u32),
            );
        }
        let lc = LcTrie::from_trie(&trie);
        // Sizes around the lane width exercise both the lockstep core and
        // the scalar remainder.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 129] {
            let addrs: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            let mut out = vec![None; n];
            lc.lookup_batch(&addrs, &mut out);
            for (a, got) in addrs.iter().zip(&out) {
                assert_eq!(*got, lc.lookup(*a), "batch diverges at {a:#x}");
            }
            // Oversized output buffer: every addressed slot must still be
            // written (the tails of both chunk streams must align).
            let mut big = vec![Some(nh(u32::MAX - 1)); n + 5];
            lc.lookup_batch(&addrs, &mut big);
            for (a, got) in addrs.iter().zip(&big) {
                assert_eq!(*got, lc.lookup(*a), "oversized batch diverges at {a:#x}");
            }
        }
    }

    #[test]
    fn ipv6_lookup_works() {
        let mut trie: BinaryTrie<u128> = BinaryTrie::new();
        let p1: crate::Prefix6 = "2001:db8::/32".parse().unwrap();
        let p2: crate::Prefix6 = "2001:db8:aaaa::/48".parse().unwrap();
        trie.insert(p1, nh(1));
        trie.insert(p2, nh(2));
        let lc = LcTrie::from_trie(&trie);
        let a1: u128 = "2001:db8:1::1"
            .parse::<std::net::Ipv6Addr>()
            .unwrap()
            .into();
        let a2: u128 = "2001:db8:aaaa::1"
            .parse::<std::net::Ipv6Addr>()
            .unwrap()
            .into();
        let a3: u128 = "2002::".parse::<std::net::Ipv6Addr>().unwrap().into();
        assert_eq!(lc.lookup(a1), Some(nh(1)));
        assert_eq!(lc.lookup(a2), Some(nh(2)));
        assert_eq!(lc.lookup(a3), None);
    }
}
