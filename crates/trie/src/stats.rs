//! FIB statistics shared by the workload generators and the benchmark
//! reporting: label histograms and prefix-length histograms.

use std::collections::BTreeMap;

use crate::addr::{Address, Prefix};
use crate::binary::BinaryTrie;
use crate::nexthop::NextHop;

/// Histogram of the next-hops over the *routes* of a FIB (one count per
/// route entry, unlike the leaf-label histogram of the normal form).
#[must_use]
pub fn route_label_histogram<A: Address>(trie: &BinaryTrie<A>) -> BTreeMap<NextHop, u64> {
    let mut hist = BTreeMap::new();
    for (_, nh) in trie.iter() {
        *hist.entry(nh).or_insert(0) += 1;
    }
    hist
}

/// Number of distinct next-hops (the paper's δ, not counting ⊥).
#[must_use]
pub fn next_hop_count<A: Address>(trie: &BinaryTrie<A>) -> usize {
    route_label_histogram(trie).len()
}

/// Histogram of prefix lengths, indexable by length.
#[derive(Clone, Debug)]
pub struct PrefixLenHistogram {
    counts: Vec<u64>,
}

impl PrefixLenHistogram {
    /// Builds from an iterator of prefixes of width `W`.
    pub fn from_prefixes<A: Address>(prefixes: impl IntoIterator<Item = Prefix<A>>) -> Self {
        let mut counts = vec![0u64; A::WIDTH as usize + 1];
        for p in prefixes {
            counts[p.len() as usize] += 1;
        }
        Self { counts }
    }

    /// Builds from the routes of a trie.
    #[must_use]
    pub fn from_trie<A: Address>(trie: &BinaryTrie<A>) -> Self {
        Self::from_prefixes(trie.iter().map(|(p, _)| p))
    }

    /// Count of prefixes with length `len`.
    #[must_use]
    pub fn count(&self, len: u8) -> u64 {
        self.counts.get(len as usize).copied().unwrap_or(0)
    }

    /// Total number of prefixes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean prefix length (the paper quotes 21.87 for BGP updates).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(len, &c)| len as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// The raw counts, indexed by length.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    #[test]
    fn histograms_count_routes() {
        let trie: BinaryTrie<u32> = [
            ("0.0.0.0/0", 1u32),
            ("10.0.0.0/8", 2),
            ("11.0.0.0/8", 2),
            ("12.0.0.0/8", 1),
        ]
        .into_iter()
        .map(|(s, h)| (s.parse::<Prefix4>().unwrap(), nh(h)))
        .collect();
        let hist = route_label_histogram(&trie);
        assert_eq!(hist.get(&nh(1)), Some(&2));
        assert_eq!(hist.get(&nh(2)), Some(&2));
        assert_eq!(next_hop_count(&trie), 2);

        let lens = PrefixLenHistogram::from_trie(&trie);
        assert_eq!(lens.count(0), 1);
        assert_eq!(lens.count(8), 3);
        assert_eq!(lens.total(), 4);
        assert!((lens.mean() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let trie: BinaryTrie<u32> = BinaryTrie::new();
        assert_eq!(next_hop_count(&trie), 0);
        let lens = PrefixLenHistogram::from_trie(&trie);
        assert_eq!(lens.total(), 0);
        assert_eq!(lens.mean(), 0.0);
    }
}
