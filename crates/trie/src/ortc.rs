//! ORTC — Optimal Route Table Construction (Draves, King, Venkatachary,
//! Zill, INFOCOM 1999), the relabeling aggregator of Fig. 1(c).
//!
//! ORTC rewrites a FIB into a forwarding-equivalent route set with the
//! minimum possible number of entries. It is the classic three-pass
//! algorithm:
//!
//! 1. **down** — normalize by (implicitly) pushing labels to the leaves of
//!    the expanded trie,
//! 2. **up** — compute per-node candidate next-hop sets: the intersection
//!    of the children's sets if non-empty, else their union,
//! 3. **down** — assign a label only where the inherited label is not in
//!    the node's candidate set.
//!
//! The invalid label ⊥ participates as an ordinary symbol, so FIBs without
//! full address-space coverage aggregate correctly; if the algorithm must
//! express "this region has no route" below a real route it emits an
//! explicit *blackhole entry* (`None` next-hop).

use crate::addr::{Address, Prefix};
use crate::binary::{BinaryTrie, NodeRef};
use crate::nexthop::NextHop;

/// Candidate set over `Option<NextHop>` (⊥ = `None`), kept sorted.
type Set = Vec<Option<NextHop>>;

fn merge(a: &Set, b: &Set) -> Set {
    // Intersection if non-empty, else union; inputs are sorted + deduped.
    let mut inter = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    if !inter.is_empty() {
        return inter;
    }
    let mut union = a.clone();
    union.extend_from_slice(b);
    union.sort_unstable();
    union.dedup();
    union
}

struct TmpNode {
    set: Set,
    children: Option<(usize, usize)>,
}

/// The output of ORTC: a minimal, forwarding-equivalent route list.
///
/// Entries with a `None` next-hop are explicit blackhole routes; they only
/// appear when the input FIB leaves part of the address space uncovered
/// underneath a covering route.
#[derive(Clone, Debug)]
pub struct OrtcFib<A: Address> {
    routes: Vec<(Prefix<A>, Option<NextHop>)>,
}

impl<A: Address> OrtcFib<A> {
    /// Number of entries (including blackhole entries).
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the aggregated table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The aggregated entries.
    #[must_use]
    pub fn routes(&self) -> &[(Prefix<A>, Option<NextHop>)] {
        &self.routes
    }

    /// Number of explicit blackhole entries.
    #[must_use]
    pub fn blackhole_count(&self) -> usize {
        self.routes.iter().filter(|(_, nh)| nh.is_none()).count()
    }

    /// Longest-prefix-match lookup over the aggregated entries. A blackhole
    /// match yields `None`, exactly like no match at all.
    #[must_use]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        let mut best: Option<(u8, Option<NextHop>)> = None;
        for &(prefix, nh) in &self.routes {
            if prefix.contains(addr) && best.is_none_or(|(len, _)| prefix.len() >= len) {
                best = Some((prefix.len(), nh));
            }
        }
        best.and_then(|(_, nh)| nh)
    }

    /// Rebuilds a [`BinaryTrie`] from the aggregated entries.
    ///
    /// Returns `None` if the aggregation needed blackhole entries, which a
    /// plain label trie cannot express.
    #[must_use]
    pub fn to_trie(&self) -> Option<BinaryTrie<A>> {
        let mut trie = BinaryTrie::new();
        for &(prefix, nh) in &self.routes {
            trie.insert(prefix, nh?);
        }
        Some(trie)
    }
}

/// Runs ORTC on `trie`.
#[must_use]
pub fn compress<A: Address>(trie: &BinaryTrie<A>) -> OrtcFib<A> {
    let mut arena: Vec<TmpNode> = Vec::new();
    let root = pass_up(trie.root().into(), None, 0, &mut arena);
    let mut routes = Vec::new();
    pass_down(&arena, root, None, Prefix::root(), &mut routes);
    OrtcFib { routes }
}

/// Pass 1 + 2 fused: candidate sets bottom-up over the implicitly expanded
/// trie. `node == None` models a phantom leaf inheriting `inherited`.
fn pass_up<A: Address>(
    node: Option<NodeRef<'_, A>>,
    inherited: Option<NextHop>,
    depth: u8,
    arena: &mut Vec<TmpNode>,
) -> usize {
    let make_leaf = |arena: &mut Vec<TmpNode>, label: Option<NextHop>| {
        arena.push(TmpNode {
            set: vec![label],
            children: None,
        });
        arena.len() - 1
    };
    let Some(node) = node else {
        return make_leaf(arena, inherited);
    };
    let effective = node.label().or(inherited);
    if node.is_leaf() || depth == A::WIDTH {
        return make_leaf(arena, effective);
    }
    let left = pass_up(node.left(), effective, depth + 1, arena);
    let right = pass_up(node.right(), effective, depth + 1, arena);
    let set = merge(&arena[left].set, &arena[right].set);
    arena.push(TmpNode {
        set,
        children: Some((left, right)),
    });
    arena.len() - 1
}

/// Pass 3: assign labels top-down, emitting a route whenever the inherited
/// label is not usable.
fn pass_down<A: Address>(
    arena: &[TmpNode],
    idx: usize,
    inherited: Option<NextHop>,
    prefix: Prefix<A>,
    out: &mut Vec<(Prefix<A>, Option<NextHop>)>,
) {
    let node = &arena[idx];
    let next_inherited = if node.set.binary_search(&inherited).is_ok() {
        inherited
    } else {
        // Inherited label unusable: pick a member. `Set` is sorted with ⊥
        // (None) first, so ⊥ is preferred whenever available, which keeps
        // "no route" regions label-free instead of masking them.
        let chosen = node.set[0];
        // Only emit when the entry changes forwarding. Choosing ⊥ with no
        // covering route above means "leave unrouted" — no entry needed.
        if chosen.is_some() || inherited.is_some() {
            out.push((prefix, chosen));
        }
        chosen
    };
    if let Some((left, right)) = node.children {
        let (pl, pr) = prefix
            .children()
            .expect("internal ORTC node above maximum depth");
        pass_down(arena, left, next_inherited, pl, out);
        pass_down(arena, right, next_inherited, pr, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Prefix4;
    use crate::table::RouteTable;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn fig1_trie() -> BinaryTrie<u32> {
        [
            (p("0.0.0.0/0"), nh(2)),
            (p("0.0.0.0/1"), nh(3)),
            (p("0.0.0.0/2"), nh(3)),
            (p("32.0.0.0/3"), nh(2)),
            (p("64.0.0.0/2"), nh(2)),
            (p("96.0.0.0/3"), nh(1)),
        ]
        .into_iter()
        .collect()
    }

    fn assert_equivalent(trie: &BinaryTrie<u32>, ortc: &OrtcFib<u32>, samples: u32) {
        for i in 0..samples {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(trie.lookup(addr), ortc.lookup(addr), "addr {addr:#x}");
        }
        // Also probe the top of the space densely: that is where the
        // interesting prefixes live in these tests.
        for top in 0..=255u32 {
            let addr = top << 24;
            assert_eq!(trie.lookup(addr), ortc.lookup(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn fig1c_compresses_six_routes_to_three() {
        // The paper's Fig. 1(c): ORTC reduces the example FIB from 6 routes
        // with 7 labeled-trie nodes to 3 labeled nodes.
        let trie = fig1_trie();
        let ortc = compress(&trie);
        assert_eq!(ortc.len(), 3, "got {:?}", ortc.routes());
        assert_eq!(ortc.blackhole_count(), 0);
        assert_equivalent(&trie, &ortc, 1000);
    }

    #[test]
    fn default_route_only() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(1));
        let ortc = compress(&trie);
        assert_eq!(ortc.len(), 1);
        assert_eq!(ortc.lookup(12345), Some(nh(1)));
    }

    #[test]
    fn empty_fib_compresses_to_nothing() {
        let trie: BinaryTrie<u32> = BinaryTrie::new();
        let ortc = compress(&trie);
        assert_eq!(ortc.len(), 0);
        assert_eq!(ortc.lookup(7), None);
    }

    #[test]
    fn redundant_specifics_are_eliminated() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(1));
        trie.insert(p("10.0.0.0/8"), nh(1));
        trie.insert(p("10.1.0.0/16"), nh(1));
        let ortc = compress(&trie);
        assert_eq!(ortc.len(), 1, "everything collapses into the default");
        assert_equivalent(&trie, &ortc, 1000);
    }

    #[test]
    fn sibling_merge_moves_label_up() {
        // 0/1 → a and 1/1 → a is just a default route.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/1"), nh(1));
        trie.insert(p("128.0.0.0/1"), nh(1));
        let ortc = compress(&trie);
        assert_eq!(ortc.len(), 1);
        assert_eq!(ortc.routes()[0].0, p("0.0.0.0/0"));
        assert_equivalent(&trie, &ortc, 100);
    }

    #[test]
    fn no_default_fib_stays_uncovered() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("10.0.0.0/8"), nh(1));
        trie.insert(p("11.0.0.0/8"), nh(1));
        let ortc = compress(&trie);
        // 10/8 + 11/8 with the same next-hop merge into 10.0.0.0/7.
        assert_eq!(ortc.len(), 1);
        assert_eq!(ortc.routes()[0].0, p("10.0.0.0/7"));
        assert_eq!(
            ortc.lookup(u32::from(std::net::Ipv4Addr::new(9, 0, 0, 0))),
            None
        );
        assert_equivalent(&trie, &ortc, 1000);
    }

    #[test]
    fn blackhole_entry_emitted_when_gap_sits_under_route() {
        // 0.0.0.0/1 → a, and inside it only 0.0.0.0/2 is routed; the
        // sibling quarter 64.0.0.0/2 is covered by /1. Now make the /1
        // disappear under aggregation pressure... construct a case where a
        // hole must be expressed explicitly:
        //   0.0.0.0/2 → a, 64.0.0.0/2 → (nothing), 128.0.0.0/1 → a
        // Optimal: 0.0.0.0/0 → a plus blackhole 64.0.0.0/2.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/2"), nh(1));
        trie.insert(p("128.0.0.0/1"), nh(1));
        let ortc = compress(&trie);
        assert_equivalent(&trie, &ortc, 4000);
        assert_eq!(ortc.len(), 2);
        assert_eq!(ortc.blackhole_count(), 1);
        assert!(
            ortc.to_trie().is_none(),
            "blackholes are not trie-representable"
        );
    }

    #[test]
    fn never_larger_than_input_on_structured_fibs() {
        // A FIB with moderate redundancy: many /16s pointing at few hops.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(0));
        for i in 0..256u32 {
            trie.insert(Prefix4::new(i << 16, 16), nh(i % 3));
        }
        let before = trie.len();
        let ortc = compress(&trie);
        assert!(ortc.len() < before, "{} !< {before}", ortc.len());
        assert_equivalent(&trie, &ortc, 4000);
        // Fully representable: rebuild and re-check.
        let rebuilt = ortc.to_trie().expect("no blackholes here");
        for i in 0..1024u32 {
            let addr = i << 14;
            assert_eq!(rebuilt.lookup(addr), trie.lookup(addr));
        }
    }

    #[test]
    fn oracle_equivalence_on_pseudorandom_fib() {
        let mut table = RouteTable::new();
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        let mut x: u64 = 0xDEAD_BEEF;
        for _ in 0..300 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let len = (x % 25) as u8;
            let addr = (x >> 32) as u32;
            let hop = nh((x % 7) as u32);
            table.insert(Prefix4::new(addr, len), hop);
            trie.insert(Prefix4::new(addr, len), hop);
        }
        let ortc = compress(&trie);
        assert!(ortc.len() <= trie.len());
        for i in 0..2000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9) ^ 0x5555_AAAA;
            assert_eq!(ortc.lookup(addr), table.lookup(addr), "addr {addr:#x}");
        }
    }
}
