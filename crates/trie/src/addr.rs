//! Address types and IP prefixes.

use std::fmt;
use std::hash::Hash;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// Traversal depth of a lookup: the number of nodes, hops or slot reads a
/// structure touched to answer a query. Every `lookup_with_depth` in the
/// workspace returns this one type so depth statistics compose across
/// engines (bit-level walkers used to say `u8`, multibit ones `u32`).
pub type Depth = u32;

/// An IP address viewed as a fixed-width bit string, most significant bit
/// first.
///
/// The paper's algorithms are width-agnostic (`W` only appears in the O(W)
/// bounds), so everything in this workspace is generic over `Address`.
/// `u32` models IPv4 (W = 32) and `u128` models IPv6 (W = 128).
pub trait Address: Copy + Eq + Ord + Hash + fmt::Debug + Default {
    /// Address width in bits (the paper's `W`).
    const WIDTH: u8;

    /// The bit at `index`, where index 0 is the most significant bit.
    ///
    /// # Panics
    /// Panics in debug builds if `index >= WIDTH`.
    fn bit(self, index: u8) -> bool;

    /// Returns `self` with the bit at `index` set (MSB-first indexing).
    #[must_use]
    fn with_bit(self, index: u8) -> Self;

    /// Keeps the top `len` bits and clears the rest.
    #[must_use]
    fn mask(self, len: u8) -> Self;

    /// Extracts `count ≤ 32` bits starting at MSB-first position `start`,
    /// returned right-aligned. Used by multibit tries to read a stride in
    /// one operation.
    ///
    /// # Panics
    /// Panics in debug builds if `start + count > WIDTH` or `count > 32`.
    #[must_use]
    fn bits(self, start: u8, count: u8) -> u32;

    /// Widening conversion used by generic generators and arithmetic.
    fn to_u128(self) -> u128;

    /// Narrowing conversion; the value must fit.
    fn from_u128(value: u128) -> Self;
}

impl Address for u32 {
    const WIDTH: u8 = 32;

    #[inline]
    fn bit(self, index: u8) -> bool {
        debug_assert!(index < 32);
        (self >> (31 - index)) & 1 == 1
    }

    #[inline]
    fn with_bit(self, index: u8) -> Self {
        debug_assert!(index < 32);
        self | (1u32 << (31 - index))
    }

    #[inline]
    fn mask(self, len: u8) -> Self {
        debug_assert!(len <= 32);
        if len == 0 {
            0
        } else {
            self & (u32::MAX << (32 - len))
        }
    }

    #[inline]
    fn bits(self, start: u8, count: u8) -> u32 {
        debug_assert!(count <= 32 && start as u32 + count as u32 <= 32);
        if count == 0 {
            return 0;
        }
        let shifted = self >> (32 - start as u32 - count as u32);
        if count == 32 {
            shifted
        } else {
            shifted & ((1u32 << count) - 1)
        }
    }

    fn to_u128(self) -> u128 {
        u128::from(self)
    }

    fn from_u128(value: u128) -> Self {
        u32::try_from(value).expect("address value exceeds 32 bits")
    }
}

impl Address for u128 {
    const WIDTH: u8 = 128;

    #[inline]
    fn bit(self, index: u8) -> bool {
        debug_assert!(index < 128);
        (self >> (127 - index)) & 1 == 1
    }

    #[inline]
    fn with_bit(self, index: u8) -> Self {
        debug_assert!(index < 128);
        self | (1u128 << (127 - index))
    }

    #[inline]
    fn mask(self, len: u8) -> Self {
        debug_assert!(len <= 128);
        if len == 0 {
            0
        } else {
            self & (u128::MAX << (128 - len))
        }
    }

    #[inline]
    fn bits(self, start: u8, count: u8) -> u32 {
        debug_assert!(count <= 32 && start as u32 + count as u32 <= 128);
        if count == 0 {
            return 0;
        }
        let shifted = self >> (128 - start as u32 - count as u32);
        (shifted as u32) & (((1u64 << count) - 1) as u32)
    }

    fn to_u128(self) -> u128 {
        self
    }

    fn from_u128(value: u128) -> Self {
        value
    }
}

/// An IP prefix: an address plus a length, kept canonical (bits past the
/// length are always zero), so `Eq`/`Hash`/`Ord` behave as expected.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix<A: Address> {
    addr: A,
    len: u8,
}

/// An IPv4 prefix.
pub type Prefix4 = Prefix<u32>;
/// An IPv6 prefix.
pub type Prefix6 = Prefix<u128>;

impl<A: Address> Prefix<A> {
    /// Creates a prefix, masking `addr` down to `len` bits.
    ///
    /// # Panics
    /// Panics if `len > A::WIDTH`.
    #[must_use]
    pub fn new(addr: A, len: u8) -> Self {
        assert!(
            len <= A::WIDTH,
            "prefix length {len} exceeds width {}",
            A::WIDTH
        );
        Self {
            addr: addr.mask(len),
            len,
        }
    }

    /// The root prefix `::/0` covering the whole address space.
    #[must_use]
    pub fn root() -> Self {
        Self {
            addr: A::default(),
            len: 0,
        }
    }

    /// The (masked) address.
    #[must_use]
    pub fn addr(self) -> A {
        self.addr
    }

    /// The prefix length. (A length of 0 is the root prefix, not an
    /// "empty" prefix, so there is deliberately no `is_empty`.)
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length root prefix.
    #[must_use]
    pub fn is_root(self) -> bool {
        self.len == 0
    }

    /// The `i`-th bit of the prefix, `i < len`.
    #[must_use]
    pub fn bit(self, i: u8) -> bool {
        debug_assert!(i < self.len);
        self.addr.bit(i)
    }

    /// Whether `addr` falls inside this prefix.
    #[must_use]
    pub fn contains(self, addr: A) -> bool {
        addr.mask(self.len) == self.addr
    }

    /// Whether `other` is equal to or more specific than `self`.
    #[must_use]
    pub fn covers(self, other: Self) -> bool {
        other.len >= self.len && other.addr.mask(self.len) == self.addr
    }

    /// The two children of this prefix in the binary trie, or `None` at
    /// maximum depth.
    #[must_use]
    pub fn children(self) -> Option<(Self, Self)> {
        if self.len >= A::WIDTH {
            return None;
        }
        let left = Self {
            addr: self.addr,
            len: self.len + 1,
        };
        let right = Self {
            addr: self.addr.with_bit(self.len),
            len: self.len + 1,
        };
        Some((left, right))
    }
}

impl fmt::Display for Prefix<u32> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv4Addr::from(self.addr), self.len)
    }
}

impl fmt::Display for Prefix<u128> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv6Addr::from(self.addr), self.len)
    }
}

impl<A: Address> fmt::Debug for Prefix<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}/{}", self.addr.to_u128(), self.len)
    }
}

/// Error parsing a textual prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePrefixError(String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix<u32> {
    type Err = ParsePrefixError;

    /// Parses `"a.b.c.d/len"`; a bare address means `/32`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len) = match s.split_once('/') {
            Some((a, l)) => (
                a,
                l.parse::<u8>()
                    .map_err(|_| ParsePrefixError(s.to_string()))?,
            ),
            None => (s, 32),
        };
        if len > 32 {
            return Err(ParsePrefixError(s.to_string()));
        }
        let addr: Ipv4Addr = addr_s
            .parse()
            .map_err(|_| ParsePrefixError(s.to_string()))?;
        Ok(Self::new(u32::from(addr), len))
    }
}

impl FromStr for Prefix<u128> {
    type Err = ParsePrefixError;

    /// Parses `"addr/len"` in IPv6 notation; a bare address means `/128`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len) = match s.split_once('/') {
            Some((a, l)) => (
                a,
                l.parse::<u8>()
                    .map_err(|_| ParsePrefixError(s.to_string()))?,
            ),
            None => (s, 128),
        };
        if len > 128 {
            return Err(ParsePrefixError(s.to_string()));
        }
        let addr: Ipv6Addr = addr_s
            .parse()
            .map_err(|_| ParsePrefixError(s.to_string()))?;
        Ok(Self::new(u128::from(addr), len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_bit_indexing_is_msb_first() {
        let a: u32 = 0x8000_0001;
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(!a.bit(30));
        assert!(a.bit(31));
    }

    #[test]
    fn u32_mask_keeps_top_bits() {
        let a: u32 = 0xFFFF_FFFF;
        assert_eq!(a.mask(0), 0);
        assert_eq!(a.mask(8), 0xFF00_0000);
        assert_eq!(a.mask(32), a);
    }

    #[test]
    fn with_bit_sets_msb_first() {
        assert_eq!(0u32.with_bit(0), 0x8000_0000);
        assert_eq!(0u32.with_bit(31), 1);
        assert_eq!(0u128.with_bit(0), 1u128 << 127);
    }

    #[test]
    fn bits_extracts_strides() {
        let a: u32 = 0xABCD_1234;
        assert_eq!(a.bits(0, 4), 0xA);
        assert_eq!(a.bits(4, 8), 0xBC);
        assert_eq!(a.bits(0, 32), a);
        assert_eq!(a.bits(28, 4), 0x4);
        assert_eq!(a.bits(16, 0), 0);
        let b: u128 = 0xABCD_1234u128 << 96;
        assert_eq!(b.bits(0, 4), 0xA);
        assert_eq!(b.bits(4, 8), 0xBC);
        assert_eq!(b.bits(96, 32), 0, "low bits are zero");
        assert_eq!(b.bits(0, 32), 0xABCD_1234);
    }

    #[test]
    fn prefix_is_canonical() {
        let p = Prefix::new(0xFFFF_FFFFu32, 8);
        assert_eq!(p.addr(), 0xFF00_0000);
        assert_eq!(p, Prefix::new(0xFF12_3456u32, 8));
    }

    #[test]
    fn prefix_contains_and_covers() {
        let p: Prefix4 = "10.0.0.0/8".parse().unwrap();
        assert!(p.contains(u32::from(Ipv4Addr::new(10, 1, 2, 3))));
        assert!(!p.contains(u32::from(Ipv4Addr::new(11, 0, 0, 0))));
        let q: Prefix4 = "10.32.0.0/11".parse().unwrap();
        assert!(p.covers(q));
        assert!(!q.covers(p));
        assert!(p.covers(p));
        assert!(Prefix4::root().covers(p));
    }

    #[test]
    fn prefix_children_split_the_space() {
        let p: Prefix4 = "10.0.0.0/8".parse().unwrap();
        let (l, r) = p.children().unwrap();
        assert_eq!(l.to_string(), "10.0.0.0/9");
        assert_eq!(r.to_string(), "10.128.0.0/9");
        let host: Prefix4 = "1.2.3.4/32".parse().unwrap();
        assert!(host.children().is_none());
    }

    #[test]
    fn parse_and_display_roundtrip_v4() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.128/25", "1.2.3.4/32"] {
            let p: Prefix4 = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        // Non-canonical input is masked.
        let p: Prefix4 = "10.0.0.1/8".parse().unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
        // Bare address is a host route.
        let p: Prefix4 = "1.2.3.4".parse().unwrap();
        assert_eq!(p.len(), 32);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0/33".parse::<Prefix4>().is_err());
        assert!("10.0.0/8".parse::<Prefix4>().is_err());
        assert!("banana".parse::<Prefix4>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix4>().is_err());
    }

    #[test]
    fn parse_and_display_roundtrip_v6() {
        for s in ["::/0", "2001:db8::/32", "fe80::/10"] {
            let p: Prefix6 = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!("2001:db8::/129".parse::<Prefix6>().is_err());
    }

    #[test]
    fn v6_bit_access() {
        let p: Prefix6 = "8000::/1".parse().unwrap();
        assert!(p.bit(0));
        let p: Prefix6 = "0010::/12".parse().unwrap();
        assert!(p.bit(11));
        assert!(!p.bit(10));
    }
}
