//! `fibcheck` — repo-invariant linter for the fibcomp workspace.
//!
//! Usage: `fibcheck [--root PATH]`
//!
//! Scans the workspace's library sources and enforces the contracts
//! documented in `fib_check::lint`: the `unsafe` allowlist, per-site
//! atomic-ordering justifications, packet-path purity, and
//! `deny(unsafe_code)` in every crate root. Exits non-zero when any
//! rule fires, printing one `file:line: rule: message` per finding.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("fibcheck: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: fibcheck [--root PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("fibcheck: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "fibcheck: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }
    match fib_check::lint::run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("fibcheck: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("fibcheck: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fibcheck: io error: {e}");
            ExitCode::from(2)
        }
    }
}
