//! Exhaustive crash-recovery checking for the router's persistence
//! protocol.
//!
//! The harness runs one deterministic churn workload against a
//! [`FaultFs`] and enumerates **every** fallible filesystem operation as
//! a crash point: for each `k`, the same workload is re-run with the
//! filesystem configured to crash just before op `k`, the surviving
//! durable state is "rebooted" ([`FaultFs::durable_clone`]), and
//! `Router::warm_restart_with` must recover a control FIB equal to some
//! oracle state **at or past the acknowledgement floor** — the last
//! update after which the spool reported `Healthy` (a healthy spool
//! means every accepted update so far is durable, either journaled or
//! inside a spilled image).
//!
//! The same sweep doubles as a mutation-kill suite: re-running it with a
//! seeded protocol mutant ([`SpoolMutant::SkipFsync`],
//! [`SpoolMutant::RenameBeforeSync`], [`SpoolMutant::ReplayPastTail`])
//! must surface at least one violation, or the harness would be too
//! weak to notice the bug it exists to prevent.

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use fib_core::{BuildConfig, PrefixDag};
use fib_router::spoolfs::{FaultConfig, FaultFs, SpoolFs, TailPolicy};
use fib_router::{RestartError, Router, RouterConfig, SpoolConfig, SpoolMutant};
use fib_trie::BinaryTrie;
use fib_workload::rng::Xoshiro256;
use fib_workload::updates::{bgp_sequence, UpdateOp};
use fib_workload::{traces, FibSpec};

/// Spool directory used inside the in-memory filesystem.
const SPOOL_DIR: &str = "/spool";
/// Updates per publish (each publish spills an image + resets journal).
const PUBLISH_EVERY: usize = 20;

/// The deterministic churn workload plus the oracle fingerprint of every
/// intermediate control state.
pub struct CrashScript {
    /// Initial control FIB.
    pub base: BinaryTrie<u32>,
    /// The scripted update sequence.
    pub updates: Vec<UpdateOp<u32>>,
    /// Lookup trace the state fingerprints hash over.
    pub trace: Vec<u32>,
    /// `fingerprints[u]` = hash of the oracle state after `u` updates
    /// (`fingerprints[0]` is the base state).
    pub fingerprints: Vec<u64>,
}

/// Hashes a control state: route count plus its answers on the trace.
fn state_hash(fib: &BinaryTrie<u32>, trace: &[u32]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
    };
    eat(fib.len() as u64);
    for &addr in trace {
        eat(fib.lookup(addr).map_or(0, |nh| 1 + u64::from(nh.index())));
    }
    h
}

impl CrashScript {
    /// Builds the scripted workload for `seed`: a DFZ-shaped base FIB,
    /// a BGP-style update sequence, and per-state oracle fingerprints.
    #[must_use]
    pub fn new(seed: u64, n_routes: usize, n_updates: usize) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let base: BinaryTrie<u32> = FibSpec::dfz_like(n_routes).generate(&mut rng);
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x5DEE_CE66);
        let updates = bgp_sequence(&mut rng, &base, n_updates);
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x0BAD_CAFE);
        let trace = traces::uniform::<u32, _>(&mut rng, 512);

        let mut oracle = base.clone();
        let mut fingerprints = Vec::with_capacity(updates.len() + 1);
        fingerprints.push(state_hash(&oracle, &trace));
        for op in &updates {
            match *op {
                UpdateOp::Announce(p, nh) => {
                    oracle.insert(p, nh);
                }
                UpdateOp::Withdraw(p) => {
                    oracle.remove(p);
                }
            }
            fingerprints.push(state_hash(&oracle, &trace));
        }
        Self {
            base,
            updates,
            trace,
            fingerprints,
        }
    }
}

fn router_config() -> RouterConfig {
    RouterConfig {
        build: BuildConfig::default(),
        publish_every: Some(PUBLISH_EVERY),
        degradation_threshold: 0.25,
        // Background threads would make op interleavings scheduler-
        // dependent; the sweep needs every run bit-identical.
        background_rebuild: false,
    }
}

/// The spool policy every sweep run uses: shallow retention so pruning
/// is exercised, and a virtual-milliseconds retry schedule so degraded
/// spools retry (and recover or suspend) *within* the workload.
#[must_use]
pub fn sweep_spool_config(mutant: SpoolMutant) -> SpoolConfig {
    SpoolConfig {
        keep: 1,
        retry_base: Duration::from_millis(1),
        retry_max: Duration::from_millis(8),
        max_retries: 4,
        mutant,
        ..SpoolConfig::default()
    }
}

/// Outcome of one scripted run over a (possibly crashing) [`FaultFs`].
pub struct CrashRun {
    /// The filesystem after the run (crashed at the configured op, if any).
    pub fs: FaultFs,
    /// Acknowledgement floor: `Some(u)` = after update `u` the spool was
    /// `Healthy`, so oracle state `u` is guaranteed durable (`Some(0)` =
    /// at least the base spill is durable; `None` = nothing promised).
    pub acked: Option<usize>,
    /// Whether the final published snapshot (cut *after* the crash, from
    /// in-memory state) still answers exactly like the final oracle
    /// state — forwarding must survive a dead spool.
    pub served_final_ok: bool,
}

/// Runs the scripted churn against a fresh [`FaultFs`] seeded with
/// `seed` and configured with `faults`.
#[must_use]
pub fn run_churn(
    script: &CrashScript,
    seed: u64,
    faults: FaultConfig,
    spool: SpoolConfig,
) -> CrashRun {
    let fs = FaultFs::with_config(seed, faults);
    let shared: Arc<dyn SpoolFs> = Arc::new(fs.clone());
    let mut router: Router<u32, PrefixDag<u32>> = Router::new(script.base.clone(), router_config());
    let _ = router.enable_spool_with(shared, SPOOL_DIR, spool);
    let mut acked = router
        .spool_health()
        .is_some_and(|h| h.is_healthy())
        .then_some(0);
    for (i, op) in script.updates.iter().enumerate() {
        match *op {
            UpdateOp::Announce(p, nh) => router.announce(p, nh),
            UpdateOp::Withdraw(p) => router.withdraw(p),
        }
        if router.spool_health().is_some_and(|h| h.is_healthy()) {
            acked = Some(i + 1);
        }
    }
    // Forwarding must keep working whatever happened to the spool: a
    // final publish (in-memory engine build; its spill may fail) has to
    // serve the exact final oracle state.
    let snapshot = router.publish();
    let served_final_ok = script
        .trace
        .iter()
        .all(|&addr| snapshot.lookup(addr) == router.control().lookup(addr))
        && state_hash(router.control(), &script.trace)
            == *script.fingerprints.last().expect("nonempty");
    CrashRun {
        fs,
        acked,
        served_final_ok,
    }
}

/// Reboots the durable state of `run` and checks that warm restart
/// recovers an oracle-consistent FIB at or past the acknowledgement
/// floor.
///
/// # Errors
/// A human-readable violation description.
pub fn verify_recovery(
    script: &CrashScript,
    run: &CrashRun,
    spool: SpoolConfig,
) -> Result<(), String> {
    if !run.served_final_ok {
        return Err("post-crash publish diverged from the oracle".to_string());
    }
    let boot = run.fs.durable_clone();
    let shared: Arc<dyn SpoolFs> = Arc::new(boot);
    match Router::<u32, PrefixDag<u32>>::warm_restart_with(
        shared,
        SPOOL_DIR,
        router_config(),
        spool,
    ) {
        Ok(recovered) => {
            let h = state_hash(recovered.control(), &script.trace);
            let floor = run.acked.unwrap_or(0);
            if script.fingerprints[floor..].contains(&h) {
                Ok(())
            } else if script.fingerprints[..floor].contains(&h) {
                Err(format!(
                    "recovered an oracle state OLDER than the ack floor {floor} \
                     (acknowledged updates lost)"
                ))
            } else {
                Err(format!(
                    "recovered state matches NO oracle state (floor {floor}): \
                     corrupt data would be served"
                ))
            }
        }
        Err(RestartError::NoValidImage) if run.acked.is_none() => Ok(()),
        Err(e) => {
            if run.acked.is_none() {
                // Nothing was ever acknowledged durable; a quarantined
                // torn base image is a legal outcome.
                Ok(())
            } else {
                Err(format!(
                    "warm restart failed ({e}) despite ack floor {:?}",
                    run.acked
                ))
            }
        }
    }
}

/// Appends one bit-rotted record past the acknowledged journal tail and
/// reboots.
///
/// This is the deterministic kill for the replay-side guards: the
/// correct protocol's per-record checksum stops replay at the rot and
/// recovers exactly the acknowledged final state, while
/// [`SpoolMutant::ReplayPastTail`] applies the garbage and is caught as
/// an oracle divergence. (The crash-point sweep can also produce this
/// situation — a torn sector that happens to be record-aligned — but
/// only with seed luck; the probe makes the kill unconditional.)
///
/// # Errors
/// A violation description (expected when `spool.mutant` is
/// [`SpoolMutant::ReplayPastTail`]).
pub fn replay_guard_probe(
    script: &CrashScript,
    seed: u64,
    spool: SpoolConfig,
) -> Result<(), String> {
    let run = run_churn(script, seed, FaultConfig::default(), spool);
    if run.acked != Some(script.updates.len()) {
        return Err("probe precondition: fault-free run must end healthy".to_string());
    }
    // A record-aligned half-written sector: plausible framing, garbage
    // checksum, an address the workload never announces.
    let mut rec = [0u8; 24];
    rec[0] = b'A';
    rec[1] = 32;
    rec[2] = 0xFF;
    rec[3] = 0xFE;
    rec[4..8].copy_from_slice(&777u32.to_le_bytes());
    rec[8..24].copy_from_slice(&0xDEAD_BEEFu128.to_le_bytes());
    let jpath = Path::new(SPOOL_DIR).join("journal.log");
    let mut f = run
        .fs
        .open_append(&jpath)
        .map_err(|e| format!("probe append: {e}"))?;
    f.write_all(&rec).map_err(|e| format!("probe write: {e}"))?;
    f.sync().map_err(|e| format!("probe sync: {e}"))?;
    verify_recovery(script, &run, spool)
}

/// Result of a full crash-point enumeration.
pub struct SweepReport {
    /// Fallible filesystem operations in the fault-free run — the size
    /// of the enumerated crash-point space.
    pub crash_points: u64,
    /// Distinct durable on-disk states observed across all crash points.
    pub distinct_states: usize,
    /// `(crash op, description)` for every oracle divergence.
    pub violations: Vec<(u64, String)>,
}

/// Enumerates every crash point of the scripted workload under the given
/// tail policy and protocol mutant, verifying recovery at each.
#[must_use]
pub fn sweep(
    script: &CrashScript,
    seed: u64,
    tail: TailPolicy,
    mutant: SpoolMutant,
) -> SweepReport {
    let spool = sweep_spool_config(mutant);
    let clean = run_churn(
        script,
        seed,
        FaultConfig {
            tail,
            ..FaultConfig::default()
        },
        spool,
    );
    let crash_points = clean.fs.op_count();
    let mut distinct = BTreeSet::new();
    let mut violations = Vec::new();
    for k in 1..=crash_points {
        let run = run_churn(
            script,
            seed.wrapping_add(k),
            FaultConfig {
                crash_at_op: Some(k),
                tail,
                ..FaultConfig::default()
            },
            spool,
        );
        distinct.insert(run.fs.fingerprint());
        if let Err(v) = verify_recovery(script, &run, spool) {
            if violations.len() < 8 {
                violations.push((k, v));
            } else {
                violations.push((k, "…".to_string()));
                break;
            }
        }
    }
    SweepReport {
        crash_points,
        distinct_states: distinct.len(),
        violations,
    }
}
