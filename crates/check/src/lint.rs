//! Repo-invariant linter: a token-level scanner (no `syn`, no external
//! dependencies) enforcing the workspace's safety contracts on its own
//! source tree. Run via the `fibcheck` binary or [`run`].
//!
//! Rules (stable kebab-case codes, one per [`Finding::rule`]):
//!
//! * `unsafe-allowlist` — the `unsafe` keyword may appear only in the
//!   three modules whose whole purpose is the unsafe boundary:
//!   `crates/succinct/src/storage.rs`, `crates/succinct/src/mem.rs`,
//!   `crates/router/src/snapcell.rs`.
//! * `ordering-justification` — every `Ordering::{SeqCst,AcqRel,Acquire,
//!   Release,Relaxed}` use in `crates/router/src` non-test code must
//!   carry a `// ordering:` comment on the same line or within the few
//!   lines above it, saying *why that strength*.
//! * `hot-path-purity` — no panic-family macro, `unwrap`/`expect`, or
//!   allocation in any function reachable (name-based call graph) from
//!   the packet-path entry points `lookup_batch`/`lookup_stream` inside
//!   `crates/{core,succinct,trie}`. `#[cold]` functions are exempt (they
//!   are the designated out-of-line error paths), as is any line
//!   carrying `// fibcheck: allow(hot-path)` with a stated reason.
//! * `deny-unsafe-missing` — every crate root carries
//!   `#![deny(unsafe_code)]` or `#![forbid(unsafe_code)]`.
//!
//! The scanner strips comments and string/char literals (preserving line
//! structure) before tokenizing, so prose about `unsafe` never trips the
//! keyword rules.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable kebab-case rule code.
    pub rule: &'static str,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Modules allowed to contain the `unsafe` keyword.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/succinct/src/storage.rs",
    "crates/succinct/src/mem.rs",
    "crates/succinct/src/simd.rs",
    "crates/router/src/snapcell.rs",
];

/// How many lines above an `Ordering::` use the `// ordering:`
/// justification may sit (it usually rides directly above the call).
const ORDERING_COMMENT_WINDOW: usize = 6;

/// Crates whose call graph is checked for hot-path purity.
const HOT_PATH_CRATES: &[&str] = &["crates/core/src", "crates/succinct/src", "crates/trie/src"];

/// Packet-path roots for the reachability pass.
const HOT_PATH_ROOTS: &[&str] = &["lookup_batch", "lookup_stream"];

/// Line marker suppressing `hot-path-purity` for one line.
const ALLOW_HOT_PATH: &str = "// fibcheck: allow(hot-path)";

/// Names that never form call-graph edges: they collide with ubiquitous
/// std methods (`Vec::new`, `Iterator::next`, …), so a name-based graph
/// would drag every local constructor into the "hot path" through one
/// `Vec::new()` in any reachable body. Build-time entry points named
/// like these are still scanned when *directly* reachable under another
/// name; the under-approximation is deliberate and documented.
const EDGE_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "from",
    "into",
    "to_owned",
    "fmt",
    "drop",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "next",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "extend",
    "write",
    "read",
    "min",
    "max",
    "iter",
    "index",
    // Atomic accessors: `AtomicU64::load`/`store` on a packet path would
    // otherwise alias load-time entry points like `FibImage::load`.
    "load",
    "store",
];

// ---------------------------------------------------------------------
// Source model
// ---------------------------------------------------------------------

struct SourceFile {
    /// Repo-relative path with forward slashes.
    rel: String,
    /// Raw text (for comment-sensitive rules).
    raw: String,
    /// Comments and literal bodies blanked, line structure intact.
    code: String,
}

/// Replaces comment bodies and string/char literal contents with spaces,
/// keeping every newline so line numbers survive. Handles nested block
/// comments, raw strings, escapes, and the lifetime-vs-char ambiguity.
fn strip(source: &str) -> String {
    let b = source.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    // Keep newlines everywhere.
    for (k, &c) in b.iter().enumerate() {
        if c == b'\n' {
            out[k] = b'\n';
        }
    }
    while i < b.len() {
        let c = b[i];
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
        } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == b'"' {
            out[i] = b'"';
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' {
                    i += 2;
                } else if b[i] == b'"' {
                    out[i] = b'"';
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
        } else if c == b'r' && i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') {
            // Raw string r"..." / r#"..."# (any hash depth).
            let mut j = i + 1;
            let mut hashes = 0;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == b'"' {
                out[i] = b'r';
                j += 1;
                'raw: while j < b.len() {
                    if b[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0;
                        while k < b.len() && b[k] == b'#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                i = j;
            } else {
                out[i] = c;
                i += 1;
            }
        } else if c == b'\'' {
            // Lifetime ('a) vs char literal ('a' / '\n').
            let is_char = if i + 1 < b.len() && b[i + 1] == b'\\' {
                true
            } else {
                i + 2 < b.len() && b[i + 2] == b'\''
            };
            if is_char {
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'\'' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
            } else {
                out[i] = c;
                i += 1;
            }
        } else {
            out[i] = c;
            i += 1;
        }
    }
    // The blanking above may have clobbered interior newlines of
    // comments/strings in `out` positions we skipped; restore them.
    for (k, &c) in b.iter().enumerate() {
        if c == b'\n' {
            out[k] = b'\n';
        }
    }
    String::from_utf8(out).expect("blanking preserves UTF-8 structure")
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Finds `needle` in `hay` at identifier boundaries, returning byte
/// offsets of every occurrence.
fn ident_positions(hay: &str, needle: &str) -> Vec<usize> {
    let hb = hay.as_bytes();
    let mut at = 0;
    let mut found = Vec::new();
    while let Some(pos) = hay[at..].find(needle) {
        let start = at + pos;
        let end = start + needle.len();
        let left_ok = start == 0 || !is_ident_byte(hb[start - 1]);
        let right_ok = end >= hb.len() || !is_ident_byte(hb[end]);
        if left_ok && right_ok {
            found.push(start);
        }
        at = start + needle.len().max(1);
    }
    found
}

fn line_of(source: &str, offset: usize) -> usize {
    source.as_bytes()[..offset]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// Byte ranges of `#[cfg(test)]`-gated items (the whole following
/// braced block), so test code escapes production-only rules.
fn test_mod_ranges(code: &str) -> Vec<(usize, usize)> {
    let b = code.as_bytes();
    let mut ranges = Vec::new();
    for start in ident_positions(code, "cfg") {
        // Match `#[cfg(test)]` allowing whitespace.
        let prefix_ok = code[..start].trim_end().ends_with("#[");
        let rest = code[start + 3..].trim_start();
        if !prefix_ok || !rest.starts_with("(test)") {
            continue;
        }
        // Find the opening brace of the gated item and its match.
        let mut i = start;
        while i < b.len() && b[i] != b'{' {
            if b[i] == b';' {
                // Gated declaration without a body (e.g. `mod tests;`).
                i = b.len();
                break;
            }
            i += 1;
        }
        if i >= b.len() {
            continue;
        }
        let open = i;
        let mut depth = 0usize;
        while i < b.len() {
            match b[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        ranges.push((open, i.min(b.len())));
    }
    ranges
}

fn in_ranges(ranges: &[(usize, usize)], pos: usize) -> bool {
    ranges.iter().any(|&(a, b)| pos >= a && pos <= b)
}

// ---------------------------------------------------------------------
// Function extraction (for the hot-path rule)
// ---------------------------------------------------------------------

struct FnDef {
    name: String,
    file_idx: usize,
    /// Byte range of the body in `code` (braces included).
    body: (usize, usize),
    cold: bool,
}

/// Extracts every `fn name(...) { ... }` with a body from stripped code.
fn extract_fns(files: &[SourceFile]) -> Vec<FnDef> {
    let mut defs = Vec::new();
    for (file_idx, sf) in files.iter().enumerate() {
        let code = &sf.code;
        let b = code.as_bytes();
        for fn_pos in ident_positions(code, "fn") {
            // Name follows.
            let mut i = fn_pos + 2;
            while i < b.len() && (b[i] as char).is_whitespace() {
                i += 1;
            }
            let name_start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            if i == name_start {
                continue;
            }
            let name = code[name_start..i].to_string();
            // Find body `{` before any `;` (skip generic bounds: track
            // angle depth loosely, brace wins).
            let mut j = i;
            let mut body_open = None;
            while j < b.len() {
                match b[j] {
                    b'{' => {
                        body_open = Some(j);
                        break;
                    }
                    b';' => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = body_open else { continue };
            let mut depth = 0usize;
            let mut k = open;
            while k < b.len() {
                match b[k] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            // #[cold] within the raw attribute lines right above.
            let fn_line = line_of(code, fn_pos);
            let raw_lines: Vec<&str> = sf.raw.lines().collect();
            let mut cold = false;
            let lo = fn_line.saturating_sub(6);
            for l in (lo..fn_line).rev() {
                let Some(text) = raw_lines.get(l.wrapping_sub(1)) else {
                    continue;
                };
                let t = text.trim();
                if t.contains("#[cold]") {
                    cold = true;
                    break;
                }
                // Stop at the first line that is not attribute/comment/
                // visibility noise — the attribute block is contiguous.
                if !(t.is_empty()
                    || t.starts_with("#[")
                    || t.starts_with("//")
                    || t.starts_with("#!["))
                {
                    break;
                }
            }
            defs.push(FnDef {
                name,
                file_idx,
                body: (open, k.min(b.len())),
                cold,
            });
        }
    }
    defs
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

fn rule_unsafe_allowlist(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for sf in files {
        if UNSAFE_ALLOWLIST.iter().any(|ok| sf.rel == *ok) {
            continue;
        }
        for pos in ident_positions(&sf.code, "unsafe") {
            findings.push(Finding {
                file: PathBuf::from(&sf.rel),
                line: line_of(&sf.code, pos),
                rule: "unsafe-allowlist",
                message: format!(
                    "`unsafe` outside the allowlisted modules ({})",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
        }
    }
}

fn rule_ordering_justification(files: &[SourceFile], findings: &mut Vec<Finding>) {
    const ORDERINGS: &[&str] = &["SeqCst", "AcqRel", "Acquire", "Release", "Relaxed"];
    for sf in files {
        if !sf.rel.starts_with("crates/router/src/") {
            continue;
        }
        let tests = test_mod_ranges(&sf.code);
        let raw_lines: Vec<&str> = sf.raw.lines().collect();
        for pos in ident_positions(&sf.code, "Ordering") {
            let rest = sf.code[pos + "Ordering".len()..].trim_start();
            let Some(variant) = ORDERINGS
                .iter()
                .find(|v| rest.starts_with("::") && rest[2..].trim_start().starts_with(**v))
            else {
                continue;
            };
            if in_ranges(&tests, pos) {
                continue;
            }
            let line = line_of(&sf.code, pos);
            // `use` lines import the names; only call sites choose.
            if raw_lines
                .get(line - 1)
                .is_some_and(|t| t.trim_start().starts_with("use "))
            {
                continue;
            }
            let lo = line.saturating_sub(ORDERING_COMMENT_WINDOW + 1);
            let justified = (lo..=line)
                .filter_map(|l| raw_lines.get(l.wrapping_sub(1)))
                .any(|t| t.contains("// ordering:"));
            if !justified {
                findings.push(Finding {
                    file: PathBuf::from(&sf.rel),
                    line,
                    rule: "ordering-justification",
                    message: format!(
                        "Ordering::{variant} without an `// ordering:` justification \
                         within {ORDERING_COMMENT_WINDOW} lines"
                    ),
                });
            }
        }
    }
}

fn rule_hot_path_purity(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let scoped: Vec<usize> = (0..files.len())
        .filter(|&i| HOT_PATH_CRATES.iter().any(|c| files[i].rel.starts_with(c)))
        .collect();
    let scoped_files: Vec<&SourceFile> = scoped.iter().map(|&i| &files[i]).collect();
    // Extract fns only from the scoped crates; exclude test-gated code.
    let all: Vec<SourceFile> = scoped_files
        .iter()
        .map(|sf| SourceFile {
            rel: sf.rel.clone(),
            raw: sf.raw.clone(),
            code: sf.code.clone(),
        })
        .collect();
    let mut defs = extract_fns(&all);
    for f in &all {
        let tests = test_mod_ranges(&f.code);
        defs.retain(|d| !(all[d.file_idx].rel == f.rel && in_ranges(&tests, d.body.0)));
    }
    // Name -> def indices (name collisions merge conservatively).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, d) in defs.iter().enumerate() {
        by_name.entry(&d.name).or_default().push(i);
    }
    // BFS over the name-based call graph from the packet-path roots.
    let mut reachable: BTreeSet<usize> = BTreeSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for root in HOT_PATH_ROOTS {
        for &i in by_name.get(*root).map(Vec::as_slice).unwrap_or(&[]) {
            if reachable.insert(i) {
                queue.push_back(i);
            }
        }
    }
    while let Some(i) = queue.pop_front() {
        let d = &defs[i];
        let body = &all[d.file_idx].code[d.body.0..d.body.1];
        for (name, idxs) in &by_name {
            if *name == d.name || EDGE_STOPLIST.contains(name) {
                continue;
            }
            // A call edge is `name` followed by `(` or `::<` (turbofish).
            let mut called = false;
            for p in ident_positions(body, name) {
                let rest = body[p + name.len()..].trim_start();
                if rest.starts_with('(') || rest.starts_with("::<") {
                    called = true;
                    break;
                }
            }
            if called {
                for &j in idxs.iter() {
                    if reachable.insert(j) {
                        queue.push_back(j);
                    }
                }
            }
        }
    }
    // Ban list scan inside reachable, non-cold bodies.
    const BANNED: &[(&str, &str)] = &[
        ("panic", "panic! in a packet-path function"),
        ("unreachable", "unreachable! in a packet-path function"),
        ("todo", "todo! in a packet-path function"),
        ("unimplemented", "unimplemented! in a packet-path function"),
        (
            "assert",
            "assert! in a packet-path function (use debug_assert!)",
        ),
        (
            "assert_eq",
            "assert_eq! in a packet-path function (use debug_assert_eq!)",
        ),
        (
            "assert_ne",
            "assert_ne! in a packet-path function (use debug_assert_ne!)",
        ),
        ("unwrap", "unwrap() can panic on the packet path"),
        ("expect", "expect() can panic on the packet path"),
        ("vec", "vec! allocates on the packet path"),
        (
            "with_capacity",
            "with_capacity allocates on the packet path",
        ),
        ("to_vec", "to_vec allocates on the packet path"),
        ("collect", "collect allocates on the packet path"),
        ("format", "format! allocates on the packet path"),
        ("to_string", "to_string allocates on the packet path"),
    ];
    for &i in &reachable {
        let d = &defs[i];
        if d.cold {
            continue;
        }
        let sf = &all[d.file_idx];
        let body = &sf.code[d.body.0..d.body.1];
        let raw_lines: Vec<&str> = sf.raw.lines().collect();
        for (tok, why) in BANNED {
            for p in ident_positions(body, tok) {
                let rest = body[p + tok.len()..].trim_start();
                let is_macro = rest.starts_with('!');
                let is_call = rest.starts_with('(');
                let macro_tok = matches!(
                    *tok,
                    "panic"
                        | "unreachable"
                        | "todo"
                        | "unimplemented"
                        | "assert"
                        | "assert_eq"
                        | "assert_ne"
                        | "vec"
                        | "format"
                );
                if macro_tok && !is_macro {
                    continue;
                }
                if !macro_tok && !is_call {
                    continue;
                }
                let line = line_of(&sf.code, d.body.0 + p);
                if raw_lines
                    .get(line - 1)
                    .is_some_and(|t| t.contains(ALLOW_HOT_PATH))
                {
                    continue;
                }
                findings.push(Finding {
                    file: PathBuf::from(&sf.rel),
                    line,
                    rule: "hot-path-purity",
                    message: format!(
                        "{why} (in `{}`, reachable from {:?})",
                        d.name, HOT_PATH_ROOTS
                    ),
                });
            }
        }
    }
}

fn rule_deny_unsafe(root: &Path, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let mut roots: Vec<String> = files
        .iter()
        .filter(|sf| sf.rel.ends_with("src/lib.rs"))
        .map(|sf| sf.rel.clone())
        .collect();
    if root.join("src/lib.rs").exists() && !roots.iter().any(|r| r == "src/lib.rs") {
        roots.push("src/lib.rs".to_string());
    }
    for rel in roots {
        let Some(sf) = files.iter().find(|sf| sf.rel == rel) else {
            continue;
        };
        let has = sf.code.contains("#![deny(unsafe_code)]")
            || sf.code.contains("#![forbid(unsafe_code)]");
        if !has {
            findings.push(Finding {
                file: PathBuf::from(&rel),
                line: 1,
                rule: "deny-unsafe-missing",
                message: "crate root lacks #![deny(unsafe_code)] or #![forbid(unsafe_code)]"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Loads every `.rs` file under the workspace's library source trees
/// (`crates/*/src` and the umbrella `src/`).
fn load(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut members: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        members.sort();
        for member in members {
            walk(&member.join("src"), &mut paths);
        }
    }
    walk(&root.join("src"), &mut paths);
    let mut files = Vec::new();
    for path in paths {
        let raw = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let code = strip(&raw);
        files.push(SourceFile { rel, raw, code });
    }
    Ok(files)
}

/// Runs every rule over the workspace rooted at `root`; findings are
/// sorted by file and line.
pub fn run(root: &Path) -> std::io::Result<Vec<Finding>> {
    let files = load(root)?;
    let mut findings = Vec::new();
    rule_unsafe_allowlist(&files, &mut findings);
    rule_ordering_justification(&files, &mut findings);
    rule_hot_path_purity(&files, &mut findings);
    rule_deny_unsafe(root, &files, &mut findings);
    findings.sort();
    findings.dedup();
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_comments_and_strings() {
        let s = strip("let x = \"unsafe\"; // unsafe\n/* unsafe */ let y = 'u';");
        assert!(!s.contains("unsafe"));
        assert!(s.contains("let x ="));
        assert!(s.contains("let y ="));
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let s = strip("fn f<'a>(x: &'a str) { let r = r#\"unsafe \" quote\"#; }");
        assert!(!s.contains("quote"));
        assert!(s.contains("fn f<'a>"));
    }

    #[test]
    fn ident_positions_respects_boundaries() {
        assert_eq!(ident_positions("unsafe_code unsafe", "unsafe"), vec![12]);
        assert!(ident_positions("deny(unsafe_code)", "unsafe").is_empty());
    }

    #[test]
    fn test_mod_ranges_cover_gated_blocks() {
        let code = strip("fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() {}\n}\n");
        let ranges = test_mod_ranges(&code);
        assert_eq!(ranges.len(), 1);
        let b_pos = code.find("fn b").unwrap();
        assert!(in_ranges(&ranges, b_pos));
        assert!(!in_ranges(&ranges, 0));
    }

    #[test]
    fn extract_fns_finds_bodies_and_cold() {
        let raw = "#[cold]\nfn slow() { other(); }\nfn fast(x: u32) -> u32 { x }\n";
        let files = vec![SourceFile {
            rel: "x.rs".into(),
            raw: raw.into(),
            code: strip(raw),
        }];
        let defs = extract_fns(&files);
        assert_eq!(defs.len(), 2);
        assert!(defs.iter().any(|d| d.name == "slow" && d.cold));
        assert!(defs.iter().any(|d| d.name == "fast" && !d.cold));
    }
}
