//! The deterministic interleaving explorer: loom-style exhaustive model
//! checking for the workspace's hand-rolled concurrency.
//!
//! # How it works
//!
//! [`explore`] runs a closure (the *body*) over and over. Each run is one
//! **execution**: the body spawns model threads ([`spawn`]/[`JoinHandle`])
//! and performs shared-memory operations through the `fib_check::sync`
//! shim ([`crate::sync::ModelShim`]). Every shared operation — atomic
//! load/store/RMW, mutex lock/unlock, heap-cell read/free — is a
//! *scheduling point*: the thread parks, a deterministic scheduler picks
//! who runs next, and only one model thread is ever executing between
//! scheduling points. Two kinds of choices parameterize an execution:
//!
//! * **schedule choices** — which enabled thread performs its pending
//!   operation next, subject to a CHESS-style preemption bound
//!   (switching away from a still-runnable thread costs budget; forced
//!   switches are free);
//! * **value choices** — which store a weak atomic load observes, under
//!   a simplified C11 model: per-location store histories, per-thread
//!   views (coherence floors per location), release stores carrying the
//!   writer's view, acquire loads joining it, RMWs reading the
//!   modification-order maximum, and `SeqCst` loads reading no older
//!   than the latest `SeqCst` store to that location.
//!
//! Choices are recorded in a trace; after each execution the explorer
//! backtracks depth-first to the last choice with an untried
//! alternative and replays. The space is exhausted when no alternative
//! remains — the [`Report`] then says `complete: true` and how many
//! distinct executions were visited.
//!
//! # What it catches
//!
//! The model heap is a slab with liveness flags, so use-after-free,
//! double-free and leaks are *structural* violations — no real dangling
//! pointers are ever created, which is why this whole crate can be
//! `#![forbid(unsafe_code)]`. Deadlocks fall out of the scheduler (no
//! enabled thread while some are blocked), and any panic inside a model
//! thread (a failed assertion in the body) is reported as a violation
//! with the panic message.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

// ---------------------------------------------------------------------
// Views (per-location vector clocks)
// ---------------------------------------------------------------------

/// A view maps location id → minimum store index this thread/object may
/// observe (its coherence floor), which doubles as the happens-before
/// summary release stores carry.
type View = Vec<usize>;

fn view_get(v: &View, loc: usize) -> usize {
    v.get(loc).copied().unwrap_or(0)
}

fn view_set(v: &mut View, loc: usize, idx: usize) {
    if v.len() <= loc {
        v.resize(loc + 1, 0);
    }
    if idx > v[loc] {
        v[loc] = idx;
    }
}

fn view_join(a: &mut View, b: &View) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (i, &x) in b.iter().enumerate() {
        if x > a[i] {
            a[i] = x;
        }
    }
}

// ---------------------------------------------------------------------
// Public result types
// ---------------------------------------------------------------------

/// What went wrong in an execution, if anything did.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// A heap cell was read after being freed.
    UseAfterFree,
    /// A heap cell was freed twice.
    DoubleFree,
    /// A heap cell was still live when the execution finished.
    Leak,
    /// No enabled thread while some were still blocked.
    Deadlock,
    /// A model thread panicked (failed assertion in the body).
    Panic,
}

/// A property violation found during exploration, with the execution's
/// choice trace so it can be replayed by eye.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What class of violation.
    pub kind: ViolationKind,
    /// Human-readable description.
    pub message: String,
    /// The choice sequence of the violating execution.
    pub trace: Vec<u32>,
}

/// Exploration parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// CHESS-style preemption budget: how many times the scheduler may
    /// switch away from a thread that could have continued. Forced
    /// switches (the running thread blocked or finished) are free.
    pub preemption_bound: usize,
    /// Safety valve: stop (incomplete) after this many executions.
    pub max_executions: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_executions: 5_000_000,
        }
    }
}

/// The outcome of an [`explore`] call.
#[derive(Clone, Debug)]
pub struct Report {
    /// Distinct executions (interleaving × value-choice combinations)
    /// actually run.
    pub executions: u64,
    /// Whether the bounded space was exhausted (always `false` when a
    /// violation stopped the search or `max_executions` was hit).
    pub complete: bool,
    /// The first violation found, if any.
    pub violation: Option<Violation>,
    /// Length of the longest choice trace seen (a size-of-space proxy).
    pub max_trace_len: usize,
}

impl Report {
    /// Panics with a readable message if the exploration found a
    /// violation or failed to exhaust the space.
    pub fn assert_clean(&self) {
        if let Some(v) = &self.violation {
            panic!(
                "model checker found {:?}: {} (trace {:?})",
                v.kind, v.message, v.trace
            );
        }
        assert!(
            self.complete,
            "exploration incomplete after {} executions",
            self.executions
        );
    }

    /// Panics unless the exploration found a violation — the mutant-kill
    /// assertion.
    pub fn assert_violated(&self, kind: ViolationKind) {
        match &self.violation {
            Some(v) => assert_eq!(
                v.kind, kind,
                "expected {kind:?}, model reported {:?}: {}",
                v.kind, v.message
            ),
            None => panic!(
                "mutant survived: {} executions, complete = {}, no violation",
                self.executions, self.complete
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Registered, OS thread not yet parked at its begin point.
    Spawning,
    /// Parked at a scheduling point with a pending operation.
    Parked,
    /// The one thread currently executing user code.
    Running,
    /// Finished.
    Done,
}

/// The operation a parked thread is waiting to perform — only what the
/// scheduler needs for enabledness; the actual effect is the closure the
/// thread itself runs once granted.
#[derive(Clone, Copy, Debug)]
enum PendingOp {
    /// Initial park after spawn; a no-op once granted.
    Begin,
    /// An unconditional shared operation (atomic, slab, unlock).
    Shared,
    /// Blocks until the mutex is free.
    Lock(usize),
    /// Blocks until the target thread is done.
    Join(usize),
}

struct ThreadSt {
    status: Status,
    pending: Option<PendingOp>,
    view: View,
}

struct StoreRec {
    value: u64,
    /// For release-or-stronger stores: the writer's full view at the
    /// store. For relaxed stores: only this store's own coherence
    /// position, so acquiring it synchronizes nothing else.
    view: View,
}

struct LocSt {
    stores: Vec<StoreRec>,
    /// Index of the newest `SeqCst` store; `SeqCst` loads may not read
    /// older than this.
    last_sc: usize,
}

struct MutexSt {
    held_by: Option<usize>,
    /// Happens-before baton: joined from the holder at unlock, into the
    /// next holder at lock.
    view: View,
}

struct SlabSlot {
    value: Option<Box<dyn Any + Send>>,
    live: bool,
}

#[derive(Clone, Copy, Debug)]
struct Choice {
    n: u32,
    picked: u32,
}

struct ExecSt {
    threads: Vec<ThreadSt>,
    locs: Vec<LocSt>,
    mutexes: Vec<MutexSt>,
    slab: Vec<SlabSlot>,
    /// Forced choice prefix for this execution (DFS replay).
    plan: Vec<u32>,
    /// Choices actually made this execution.
    trace: Vec<Choice>,
    cursor: usize,
    active: usize,
    last_sched: Option<usize>,
    preemptions: usize,
    bound: usize,
    live: usize,
    violation: Option<Violation>,
    aborting: bool,
}

struct Exec {
    st: Mutex<ExecSt>,
    cv: Condvar,
}

impl Exec {
    fn lock(&self) -> MutexGuard<'_, ExecSt> {
        // Tolerate poison: a panicking model thread must still be able to
        // run its drops and mark itself done.
        self.st
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Sentinel payload used to unwind model threads when an execution
/// aborts (violation found elsewhere, or this thread hit one).
struct ModelAbort;

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct Ctx {
    exec: Arc<Exec>,
    id: usize,
}

fn cur_ctx() -> Ctx {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("model synchronization used outside a model execution (run under fib_check::model::explore)")
    })
}

fn abort_unwind() -> ! {
    // resume_unwind rather than panic_any: the payload is control flow,
    // not an error, and must not trip the user's panic hook.
    panic::resume_unwind(Box::new(ModelAbort));
}

fn record_violation(st: &mut ExecSt, kind: ViolationKind, message: String) {
    if st.violation.is_none() {
        st.violation = Some(Violation {
            kind,
            message,
            trace: st.trace.iter().map(|c| c.picked).collect(),
        });
    }
    st.aborting = true;
}

// ---------------------------------------------------------------------
// Choice machinery
// ---------------------------------------------------------------------

/// Consumes one DFS choice slot with `n` options; options are explored
/// in index order, option 0 first. Unit choices don't consume a slot.
fn decide(st: &mut ExecSt, n: u32) -> u32 {
    if n <= 1 {
        return 0;
    }
    let picked = if st.cursor < st.plan.len() {
        st.plan[st.cursor]
    } else {
        0
    };
    assert!(
        picked < n,
        "nondeterministic model execution: replay slot {} wants option {picked} of {n}",
        st.cursor
    );
    st.trace.push(Choice { n, picked });
    st.cursor += 1;
    picked
}

fn is_enabled(st: &ExecSt, tid: usize) -> bool {
    let t = &st.threads[tid];
    if t.status != Status::Parked {
        return false;
    }
    match t.pending {
        Some(PendingOp::Lock(m)) => st.mutexes[m].held_by.is_none(),
        Some(PendingOp::Join(j)) => st.threads[j].status == Status::Done,
        Some(_) => true,
        None => false,
    }
}

/// Picks the next thread to run and stores it in `st.active`. `Ok(())`
/// granted someone; `Err(())` means the execution is over (all done) or
/// deadlocked (recorded as a violation).
fn schedule(st: &mut ExecSt) -> Result<(), ()> {
    let enabled: Vec<usize> = (0..st.threads.len())
        .filter(|&t| is_enabled(st, t))
        .collect();
    if enabled.is_empty() {
        if st.live > 0 {
            let blocked: Vec<usize> = (0..st.threads.len())
                .filter(|&t| st.threads[t].status == Status::Parked)
                .collect();
            record_violation(
                st,
                ViolationKind::Deadlock,
                format!("no enabled thread; blocked: {blocked:?}"),
            );
        }
        return Err(());
    }
    // Option order: continuing the last-scheduled thread is option 0 (no
    // preemption — the DFS default), everyone else in id order. When the
    // preemption budget is spent and the last thread can continue, it is
    // the only option.
    let mut options = enabled.clone();
    let last_runnable = st.last_sched.filter(|l| options.contains(l));
    if let Some(last) = last_runnable {
        options.retain(|&t| t != last);
        options.insert(0, last);
        if st.preemptions >= st.bound {
            options.truncate(1);
        }
    }
    let k = decide(st, options.len() as u32) as usize;
    let chosen = options[k];
    if let Some(last) = last_runnable {
        if chosen != last {
            st.preemptions += 1;
        }
    }
    st.last_sched = Some(chosen);
    st.active = chosen;
    Ok(())
}

// ---------------------------------------------------------------------
// The scheduling point
// ---------------------------------------------------------------------

/// Parks the current thread with `pending`, hands the schedule to the
/// explorer, and once granted runs `effect` on the locked state.
fn sched_op<R>(pending: PendingOp, effect: impl FnOnce(&mut ExecSt, usize) -> R) -> R {
    let ctx = cur_ctx();
    let mut st = ctx.exec.lock();
    if std::thread::panicking() || (st.aborting && st.threads[ctx.id].status == Status::Done) {
        // Free-run mode: this thread is unwinding (abort or assertion),
        // or it is already marked done on an aborting execution and is
        // dropping a closure that never ran. Its drops still perform
        // shim operations; apply effects directly — exploration of this
        // execution is already over.
        return effect(&mut st, ctx.id);
    }
    if st.aborting {
        drop(st);
        abort_unwind();
    }
    st.threads[ctx.id].status = Status::Parked;
    st.threads[ctx.id].pending = Some(pending);
    if schedule(&mut st).is_err() {
        drop(st);
        ctx.exec.cv.notify_all();
        abort_unwind();
    }
    while st.active != ctx.id {
        ctx.exec.cv.notify_all();
        st = ctx
            .exec
            .cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.aborting {
            drop(st);
            ctx.exec.cv.notify_all();
            abort_unwind();
        }
    }
    st.threads[ctx.id].status = Status::Running;
    st.threads[ctx.id].pending = None;
    let r = effect(&mut st, ctx.id);
    if st.aborting {
        drop(st);
        ctx.exec.cv.notify_all();
        abort_unwind();
    }
    r
}

// ---------------------------------------------------------------------
// Shim entry points (crate-internal; `sync` wraps them)
// ---------------------------------------------------------------------

fn ord_is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn ord_is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Registers a new atomic location holding `init`. Not a scheduling
/// point: registration happens while this thread is the only runner.
pub(crate) fn loc_new(init: u64) -> usize {
    let ctx = cur_ctx();
    let mut st = ctx.exec.lock();
    let loc = st.locs.len();
    let mut view = View::new();
    view_set(&mut view, loc, 0);
    st.locs.push(LocSt {
        stores: vec![StoreRec { value: init, view }],
        last_sc: 0,
    });
    loc
}

pub(crate) fn atomic_load(loc: usize, order: Ordering) -> u64 {
    sched_op(PendingOp::Shared, move |st, me| {
        let floor = {
            let coh = view_get(&st.threads[me].view, loc);
            if order == Ordering::SeqCst {
                coh.max(st.locs[loc].last_sc)
            } else {
                coh
            }
        };
        let newest = st.locs[loc].stores.len() - 1;
        // Option 0 reads the newest store (the SC-like execution comes
        // first in DFS order); further options read progressively staler
        // coherence-allowed stores.
        let k = decide(st, (newest - floor + 1) as u32) as usize;
        let idx = newest - k;
        let store = &st.locs[loc].stores[idx];
        let value = store.value;
        if ord_is_acquire(order) {
            let sview = store.view.clone();
            view_join(&mut st.threads[me].view, &sview);
        }
        view_set(&mut st.threads[me].view, loc, idx);
        value
    })
}

pub(crate) fn atomic_store(loc: usize, value: u64, order: Ordering) {
    sched_op(PendingOp::Shared, move |st, me| {
        let idx = st.locs[loc].stores.len();
        view_set(&mut st.threads[me].view, loc, idx);
        let view = if ord_is_release(order) {
            st.threads[me].view.clone()
        } else {
            let mut v = View::new();
            view_set(&mut v, loc, idx);
            v
        };
        st.locs[loc].stores.push(StoreRec { value, view });
        if order == Ordering::SeqCst {
            st.locs[loc].last_sc = idx;
        }
    });
}

/// RMW: reads the modification-order maximum, applies `f`, writes the
/// result; returns the old value.
pub(crate) fn atomic_rmw(loc: usize, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
    sched_op(PendingOp::Shared, move |st, me| {
        let read_idx = st.locs[loc].stores.len() - 1;
        let old = st.locs[loc].stores[read_idx].value;
        if ord_is_acquire(order) {
            let sview = st.locs[loc].stores[read_idx].view.clone();
            view_join(&mut st.threads[me].view, &sview);
        }
        let idx = read_idx + 1;
        view_set(&mut st.threads[me].view, loc, idx);
        let view = if ord_is_release(order) {
            // Continue the release sequence: an acquire of this RMW also
            // synchronizes with the store it replaced.
            let mut v = st.threads[me].view.clone();
            let prev = st.locs[loc].stores[read_idx].view.clone();
            view_join(&mut v, &prev);
            v
        } else {
            let mut v = View::new();
            view_set(&mut v, loc, idx);
            v
        };
        st.locs[loc].stores.push(StoreRec {
            value: f(old),
            view,
        });
        if order == Ordering::SeqCst {
            st.locs[loc].last_sc = idx;
        }
        old
    })
}

/// Registers a model mutex. Not a scheduling point.
pub(crate) fn mutex_new() -> usize {
    let ctx = cur_ctx();
    let mut st = ctx.exec.lock();
    let mid = st.mutexes.len();
    st.mutexes.push(MutexSt {
        held_by: None,
        view: View::new(),
    });
    mid
}

pub(crate) fn mutex_lock(mid: usize) {
    sched_op(PendingOp::Lock(mid), move |st, me| {
        debug_assert!(
            st.aborting || st.mutexes[mid].held_by.is_none(),
            "granted a held mutex"
        );
        st.mutexes[mid].held_by = Some(me);
        let mview = st.mutexes[mid].view.clone();
        view_join(&mut st.threads[me].view, &mview);
    });
}

pub(crate) fn mutex_unlock(mid: usize) {
    sched_op(PendingOp::Shared, move |st, me| {
        st.mutexes[mid].held_by = None;
        let tview = st.threads[me].view.clone();
        view_join(&mut st.mutexes[mid].view, &tview);
    });
}

/// Moves `value` into a fresh slab cell. Not a scheduling point — the
/// cell is unreachable to other threads until its id is published
/// through an atomic.
pub(crate) fn slab_alloc(value: Box<dyn Any + Send>) -> u64 {
    let ctx = cur_ctx();
    let mut st = ctx.exec.lock();
    let id = st.slab.len() as u64;
    st.slab.push(SlabSlot {
        value: Some(value),
        live: true,
    });
    id
}

pub(crate) fn slab_free(id: u64) {
    sched_op(PendingOp::Shared, move |st, _me| {
        let live = st.slab[id as usize].live;
        if live {
            st.slab[id as usize].live = false;
            st.slab[id as usize].value = None;
        } else if !st.aborting {
            record_violation(
                st,
                ViolationKind::DoubleFree,
                format!("heap cell {id} freed twice"),
            );
        }
    });
}

pub(crate) fn slab_read<V: Clone + 'static>(id: u64) -> V {
    sched_op(PendingOp::Shared, move |st, _me| {
        if !st.slab[id as usize].live {
            record_violation(
                st,
                ViolationKind::UseAfterFree,
                format!("heap cell {id} read after free"),
            );
            return None;
        }
        let v = st.slab[id as usize]
            .value
            .as_ref()
            .and_then(|b| b.downcast_ref::<V>())
            .expect("slab cell type confusion")
            .clone();
        Some(v)
    })
    .expect("heap cell read after free during abort unwind")
}

// ---------------------------------------------------------------------
// Model threads
// ---------------------------------------------------------------------

/// Handle to a model thread, like [`std::thread::JoinHandle`].
pub struct JoinHandle<R> {
    exec: Arc<Exec>,
    id: usize,
    os: Option<std::thread::JoinHandle<()>>,
    result: Arc<Mutex<Option<R>>>,
}

impl<R> JoinHandle<R> {
    /// Waits (as a scheduling point) for the thread to finish and
    /// returns its closure's value.
    pub fn join(mut self) -> R {
        let id = self.id;
        sched_op(PendingOp::Join(id), move |st, me| {
            let child_view = st.threads[id].view.clone();
            view_join(&mut st.threads[me].view, &child_view);
        });
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        let _ = &self.exec;
        self.result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("model thread finished without a result")
    }
}

/// Spawns a model thread running `f`. Must be called from inside a model
/// execution. The spawn synchronizes like [`std::thread::spawn`]: the
/// child starts with the parent's happens-before view.
pub fn spawn<F, R>(f: F) -> JoinHandle<R>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    let ctx = cur_ctx();
    let result = Arc::new(Mutex::new(None::<R>));
    let result2 = Arc::clone(&result);
    let id = {
        let mut st = ctx.exec.lock();
        let id = st.threads.len();
        let view = st.threads[ctx.id].view.clone();
        st.threads.push(ThreadSt {
            status: Status::Spawning,
            pending: None,
            view,
        });
        st.live += 1;
        id
    };
    let exec2 = Arc::clone(&ctx.exec);
    let os = std::thread::Builder::new()
        .name(format!("model-{id}"))
        .spawn(move || {
            run_model_thread(exec2, id, move || {
                let r = f();
                *result2
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
            });
        })
        .expect("failed to spawn model thread");
    // Wait until the child is parked at its begin point so the thread
    // set is deterministic at every scheduling decision.
    {
        let mut st = ctx.exec.lock();
        while st.threads[id].status == Status::Spawning {
            st = ctx
                .exec
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    JoinHandle {
        exec: Arc::clone(&ctx.exec),
        id,
        os: Some(os),
        result,
    }
}

fn run_model_thread(exec: Arc<Exec>, id: usize, f: impl FnOnce() + Send) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: Arc::clone(&exec),
            id,
        });
    });
    {
        let mut st = exec.lock();
        st.threads[id].status = Status::Parked;
        st.threads[id].pending = Some(PendingOp::Begin);
        exec.cv.notify_all();
        let mut dead = false;
        while st.active != id {
            if st.aborting {
                dead = true;
                break;
            }
            st = exec
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if !dead {
            st.threads[id].status = Status::Running;
            st.threads[id].pending = None;
        } else {
            drop(st);
            finish_thread(&exec, id, None);
            // The closure never ran; its captures (readers, cells) may
            // perform shim operations on drop. We are marked Done on an
            // aborting execution, so those free-run — but CTX must still
            // be set while they do.
            drop(f);
            CTX.with(|c| c.borrow_mut().take());
            return;
        }
    }
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    finish_thread(&exec, id, outcome.err());
    CTX.with(|c| c.borrow_mut().take());
}

fn finish_thread(exec: &Arc<Exec>, id: usize, panic_payload: Option<Box<dyn Any + Send>>) {
    let mut st = exec.lock();
    if let Some(p) = panic_payload {
        if !p.is::<ModelAbort>() {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "model thread panicked".to_string());
            record_violation(&mut st, ViolationKind::Panic, msg);
        }
    }
    st.threads[id].status = Status::Done;
    st.threads[id].pending = None;
    st.live -= 1;
    if !st.aborting && st.live > 0 {
        let _ = schedule(&mut st);
    }
    drop(st);
    exec.cv.notify_all();
}

// ---------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------

/// Exhaustively explores `body` under `config`. See the module docs.
pub fn explore<F>(config: Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let mut plan: Vec<u32> = Vec::new();
    let mut executions = 0u64;
    let mut max_trace_len = 0usize;
    loop {
        let exec = Arc::new(Exec {
            st: Mutex::new(ExecSt {
                threads: vec![ThreadSt {
                    status: Status::Spawning,
                    pending: None,
                    view: View::new(),
                }],
                locs: Vec::new(),
                mutexes: Vec::new(),
                slab: Vec::new(),
                plan: std::mem::take(&mut plan),
                trace: Vec::new(),
                cursor: 0,
                active: usize::MAX,
                last_sched: None,
                preemptions: 0,
                bound: config.preemption_bound,
                live: 1,
                violation: None,
                aborting: false,
            }),
            cv: Condvar::new(),
        });
        let exec2 = Arc::clone(&exec);
        let b = Arc::clone(&body);
        let root = std::thread::Builder::new()
            .name("model-0".to_string())
            .spawn(move || run_model_thread(exec2, 0, move || b()))
            .expect("failed to spawn model root thread");
        {
            let mut st = exec.lock();
            while st.threads[0].status == Status::Spawning {
                st = exec
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.active = 0;
            st.last_sched = Some(0);
        }
        exec.cv.notify_all();
        let (violation, trace) = {
            let mut st = exec.lock();
            while st.live > 0 {
                st = exec
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if st.violation.is_none() {
                let leaked: Vec<usize> = st
                    .slab
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.live)
                    .map(|(i, _)| i)
                    .collect();
                if !leaked.is_empty() {
                    record_violation(
                        &mut st,
                        ViolationKind::Leak,
                        format!("heap cells never freed: {leaked:?}"),
                    );
                }
            }
            (st.violation.take(), std::mem::take(&mut st.trace))
        };
        let _ = root.join();
        executions += 1;
        max_trace_len = max_trace_len.max(trace.len());
        if violation.is_some() {
            return Report {
                executions,
                complete: false,
                violation,
                max_trace_len,
            };
        }
        // Depth-first backtrack: bump the deepest choice with an untried
        // alternative, drop everything after it.
        let mut advanced = false;
        for i in (0..trace.len()).rev() {
            if trace[i].picked + 1 < trace[i].n {
                plan = trace[..i].iter().map(|c| c.picked).collect();
                plan.push(trace[i].picked + 1);
                advanced = true;
                break;
            }
        }
        if !advanced {
            return Report {
                executions,
                complete: true,
                violation: None,
                max_trace_len,
            };
        }
        if executions >= config.max_executions {
            return Report {
                executions,
                complete: false,
                violation: None,
                max_trace_len,
            };
        }
    }
}
