//! `fib-check`: the workspace's offline verification toolkit.
//!
//! Three engines, no external dependencies, no `unsafe`:
//!
//! 1. **Concurrency model checker** ([`model`] + [`sync`]) — a
//!    deterministic DFS explorer with bounded preemption and a
//!    simplified C11 weak-memory model. The `fib-router` snapshot
//!    publication protocol (`SnapCellCore`) and update bus are generic
//!    over a synchronization shim; [`sync::ModelShim`] instantiates
//!    them on instrumented primitives so *the shipping source* is
//!    exhaustively explored for use-after-free, stale reads, deadlock,
//!    and leaked snapshots.
//! 2. **Repo-invariant linter** ([`lint`], CLI `fibcheck`) — a
//!    token-level scanner enforcing the workspace's safety contracts:
//!    `unsafe` only in allowlisted modules, every atomic-ordering
//!    choice justified with an `// ordering:` comment, no
//!    panic/allocation in the packet hot path, `deny(unsafe_code)` in
//!    every crate root.
//! 3. **Deep image analysis** — structural linting of serialized FIB
//!    images (section bounds, rank-directory cross-validation, pDAG
//!    acyclicity) lives in `fib-core` and is re-exported here as
//!    [`image_lint`] so one crate fronts all verification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod lint;
pub mod model;
pub mod sync;

pub use fib_core::lint as image_lint;
pub use model::{explore, Config, Report, Violation, ViolationKind};
