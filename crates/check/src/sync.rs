//! Model-side implementations of the `fib_router::shim` trait family.
//!
//! [`ModelShim`] is the second instantiation of the shim that
//! [`fib_router::snapcell::SnapCellCore`] and the update bus are generic
//! over: every atomic access, mutex acquisition, and heap-cell
//! read/free becomes a scheduling point of the [`crate::model`]
//! explorer, and the "heap" is a slab with liveness flags so
//! use-after-free is a detected violation instead of undefined
//! behavior. The protocol source under test is *identical* to what the
//! router ships — only the primitives change.

use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

use fib_router::shim::{AtomCell, AtomU64, MutexLike, Ordering, Shim};

use crate::model;

/// Model `u64` atomic: a location id in the current execution's store
/// history.
#[derive(Debug)]
pub struct ModelAtomicU64 {
    loc: usize,
}

impl AtomU64 for ModelAtomicU64 {
    fn new(value: u64) -> Self {
        Self {
            loc: model::loc_new(value),
        }
    }
    fn load(&self, order: Ordering) -> u64 {
        model::atomic_load(self.loc, order)
    }
    fn store(&self, value: u64, order: Ordering) {
        model::atomic_store(self.loc, value, order);
    }
    fn fetch_add(&self, delta: u64, order: Ordering) -> u64 {
        model::atomic_rmw(self.loc, order, |old| old.wrapping_add(delta))
    }
}

/// Model pointer: a slab cell id. `Copy + Eq` without any bound on `V`,
/// like a raw pointer — and like a raw pointer it can dangle, except
/// here a dangling read is a *reported violation*, not UB.
pub struct ModelPtr<V> {
    id: u64,
    _ph: PhantomData<fn() -> V>,
}

impl<V> Clone for ModelPtr<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for ModelPtr<V> {}
impl<V> PartialEq for ModelPtr<V> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl<V> Eq for ModelPtr<V> {}
impl<V> std::fmt::Debug for ModelPtr<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ModelPtr({})", self.id)
    }
}

/// Model pointer-sized atomic cell: the slab id is stored as a `u64` in
/// an ordinary model location, so publication ordering on the pointer
/// is explored exactly like any other atomic.
#[derive(Debug)]
pub struct ModelAtomicCell<V> {
    loc: usize,
    _ph: PhantomData<fn() -> V>,
}

impl<V: Send + Sync + 'static> AtomCell<ModelPtr<V>> for ModelAtomicCell<V> {
    fn new(value: ModelPtr<V>) -> Self {
        Self {
            loc: model::loc_new(value.id),
            _ph: PhantomData,
        }
    }
    fn load(&self, order: Ordering) -> ModelPtr<V> {
        ModelPtr {
            id: model::atomic_load(self.loc, order),
            _ph: PhantomData,
        }
    }
    fn swap(&self, value: ModelPtr<V>, order: Ordering) -> ModelPtr<V> {
        ModelPtr {
            id: model::atomic_rmw(self.loc, order, move |_| value.id),
            _ph: PhantomData,
        }
    }
}

/// Model mutex: acquisition is a scheduling point with deadlock
/// detection and a happens-before baton; the data itself lives in an
/// ordinary `std::sync::Mutex` (never contended — the model runs one
/// thread at a time) so this crate stays free of `unsafe`.
#[derive(Debug)]
pub struct ModelMutex<T> {
    mid: usize,
    data: std::sync::Mutex<T>,
}

/// Guard returned by [`ModelMutex`]'s `lock`. Dropping it performs the
/// model unlock (a scheduling point) and then releases the inner lock;
/// no other model thread can run between the two, so the pair is
/// atomic from the model's point of view.
pub struct ModelGuard<'a, T> {
    mid: usize,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for ModelGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> DerefMut for ModelGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for ModelGuard<'_, T> {
    fn drop(&mut self) {
        // Model-unlock first (scheduling point), then release the real
        // lock. We remain the active thread throughout, and the next
        // model-granted locker only touches `data` after *its* lock
        // scheduling point, by which time the real guard is gone.
        model::mutex_unlock(self.mid);
        self.inner.take();
    }
}

impl<T: Send> MutexLike<T> for ModelMutex<T> {
    type Guard<'a>
        = ModelGuard<'a, T>
    where
        Self: 'a,
        T: 'a;
    fn new(value: T) -> Self {
        Self {
            mid: model::mutex_new(),
            data: std::sync::Mutex::new(value),
        }
    }
    fn lock(&self) -> Self::Guard<'_> {
        model::mutex_lock(self.mid);
        ModelGuard {
            mid: self.mid,
            inner: Some(
                self.data
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
        }
    }
    fn get_mut(&mut self) -> &mut T {
        self.data
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The model instantiation of the router's synchronization shim.
#[derive(Debug)]
pub struct ModelShim;

impl Shim for ModelShim {
    type AtomicU64 = ModelAtomicU64;
    type Cell<V: Send + Sync + 'static> = ModelAtomicCell<V>;
    type Mutex<T: Send> = ModelMutex<T>;
    type Ptr<V: Send + Sync + 'static> = ModelPtr<V>;

    fn alloc<V: Send + Sync + 'static>(value: V) -> Self::Ptr<V> {
        ModelPtr {
            id: model::slab_alloc(Box::new(value)),
            _ph: PhantomData,
        }
    }
    fn free<V: Send + Sync + 'static>(ptr: Self::Ptr<V>) {
        model::slab_free(ptr.id);
    }
    fn read<V: Clone + Send + Sync + 'static>(ptr: Self::Ptr<V>) -> V {
        model::slab_read::<V>(ptr.id)
    }
}

/// The production `SnapCell` protocol running on model primitives.
pub type ModelSnapCell<T> = fib_router::snapcell::SnapCellCore<T, ModelShim>;
/// The production reader handle running on model primitives.
pub type ModelSnapReader<T> = fib_router::snapcell::SnapReaderCore<T, ModelShim>;
/// The production update-bus sender running on model primitives.
pub type ModelBusSender<T> = fib_router::runtime::BusSenderCore<T, ModelShim>;
/// The production update-bus receiver running on model primitives.
pub type ModelBusReceiver<T> = fib_router::runtime::BusReceiverCore<T, ModelShim>;

/// A model-shim update-bus channel.
pub fn model_bus_channel<T: Send + 'static>() -> (ModelBusSender<T>, ModelBusReceiver<T>) {
    fib_router::runtime::bus_channel_core::<T, ModelShim>()
}
