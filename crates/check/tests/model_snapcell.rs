//! Exhaustive exploration of the `SnapCell` snapshot-publication
//! protocol — the same `SnapCellCore` source the router ships, run on
//! [`fib_check::sync::ModelShim`].
//!
//! These replace the hand-pinned interleaving schedules the router crate
//! used to carry: instead of three adversarial schedules someone thought
//! of, the explorer enumerates *every* schedule (bounded preemption) and
//! every weak-memory read, and the slab heap turns use-after-free into a
//! reported violation.
//!
//! Properties checked in every execution:
//! * no snapshot cell is read after the writer reclaimed it (UAF),
//! * no cell is freed twice or leaked (reclamation is exact),
//! * each reader's observed generation is monotone,
//! * each reader's observed snapshot value is monotone,
//! * a reader's snapshot is never *staler* than its reported generation
//!   (we publish the value `g` at generation `g`, so `value >= gen`).
//!
//! The last property is deliberately one-sided. The obvious stronger
//! claim — `value == generation` — is false, and the explorer found the
//! refutation: a publish's pointer swap can land between the reader's
//! generation validate and its `current` load, handing the reader a
//! *fresher* snapshot than the generation it just validated. That is
//! memory-safe (the hazard handshake pins the cell either way) and
//! self-heals on the next `get`, but it means `SnapReader::generation`
//! is a lower bound, not an exact tag — which is what its docs now say.

use std::sync::Arc;

use fib_check::model::{self, Config};
use fib_check::sync::ModelSnapCell;

/// Full bound when `FIB_MODEL_FULL=1` (CI full job), smoke bound
/// otherwise. The smoke bound already explores every single-preemption
/// schedule plus all weak-memory value choices.
fn bound() -> usize {
    if std::env::var("FIB_MODEL_FULL").as_deref() == Ok("1") {
        3
    } else {
        2
    }
}

/// Drives one reader handle, asserting the protocol's contract at every
/// `get`: monotone generations, monotone snapshot values, and a
/// snapshot never staler than the generation the handle reports.
fn run_reader(mut reader: fib_check::sync::ModelSnapReader<u64>, gets: usize) {
    let mut last_gen = reader.generation();
    let mut last_value = **reader.get();
    for _ in 0..gets {
        let value = **reader.get();
        let generation = reader.generation();
        assert!(
            generation >= last_gen,
            "reader generation went backwards: {last_gen} -> {generation}"
        );
        assert!(
            value >= last_value,
            "snapshot went backwards: {last_value} -> {value}"
        );
        assert!(
            value >= generation,
            "snapshot value {value} is staler than its claimed generation {generation}"
        );
        last_gen = generation;
        last_value = value;
    }
}

/// The headline scenario from the issue: two concurrent readers, one
/// publisher, snapshot reclamation in the loop. Exhausts the bounded
/// space and requires a non-trivial amount of it.
#[test]
fn two_readers_one_publisher_exhaustive() {
    let report = model::explore(
        Config {
            preemption_bound: bound(),
            max_executions: 40_000_000,
        },
        || {
            let cell = Arc::new(ModelSnapCell::new(Arc::new(1u64)));
            let r1 = cell.reader();
            let r2 = cell.reader();
            let publisher = {
                let cell = Arc::clone(&cell);
                model::spawn(move || {
                    cell.publish(Arc::new(2));
                })
            };
            let t1 = model::spawn(move || run_reader(r1, 1));
            let t2 = model::spawn(move || run_reader(r2, 1));
            t1.join();
            t2.join();
            publisher.join();
            assert_eq!(*cell.load(), 2);
            assert_eq!(cell.generation(), 2);
            cell.reclaim();
            // Readers are gone and announced idle: nothing may still be
            // deferred. (The slab leak check additionally proves every
            // cell is freed once the cell itself drops.)
            assert_eq!(cell.retired_len(), 0, "quiesced cells not reclaimed");
        },
    );
    report.assert_clean();
    assert!(
        report.executions >= 10_000,
        "expected >= 10k distinct interleavings, explored {}",
        report.executions
    );
    println!(
        "2R/1P bound {}: {} executions, max trace {}",
        bound(),
        report.executions,
        report.max_trace_len
    );
}

/// Smaller space, deeper schedule freedom: one reader against a
/// publisher at a higher preemption bound than the headline test.
#[test]
fn one_reader_one_publisher_deep_preemption() {
    let report = model::explore(
        Config {
            preemption_bound: 4,
            max_executions: 40_000_000,
        },
        || {
            let cell = Arc::new(ModelSnapCell::new(Arc::new(1u64)));
            let r = cell.reader();
            let publisher = {
                let cell = Arc::clone(&cell);
                model::spawn(move || {
                    cell.publish(Arc::new(2));
                })
            };
            let t = model::spawn(move || run_reader(r, 2));
            t.join();
            publisher.join();
        },
    );
    report.assert_clean();
}

/// A reader created, cloned, and dropped concurrently with publishes:
/// exercises slot registration/deregistration against the hazard scan.
#[test]
fn reader_clone_and_drop_race_publisher() {
    let report = model::explore(
        Config {
            preemption_bound: 2,
            max_executions: 40_000_000,
        },
        || {
            let cell = Arc::new(ModelSnapCell::new(Arc::new(1u64)));
            let r = cell.reader();
            let publisher = {
                let cell = Arc::clone(&cell);
                model::spawn(move || {
                    cell.publish(Arc::new(2));
                })
            };
            let t = model::spawn(move || {
                let mut r2 = r.clone();
                drop(r);
                let value = **r2.get();
                assert!(value >= r2.generation());
            });
            t.join();
            publisher.join();
        },
    );
    report.assert_clean();
}

/// Writer-side `load` (under the writer mutex) racing a publish from
/// another handle must always return a coherent (value, generation)
/// pair.
#[test]
fn control_path_load_is_coherent() {
    let report = model::explore(
        Config {
            preemption_bound: 3,
            max_executions: 40_000_000,
        },
        || {
            let cell = Arc::new(ModelSnapCell::new(Arc::new(1u64)));
            let publisher = {
                let cell = Arc::clone(&cell);
                model::spawn(move || {
                    cell.publish(Arc::new(2));
                })
            };
            let observer = {
                let cell = Arc::clone(&cell);
                model::spawn(move || {
                    let value = *cell.load();
                    assert!(value == 1 || value == 2, "torn control-path read: {value}");
                })
            };
            observer.join();
            publisher.join();
        },
    );
    report.assert_clean();
}
