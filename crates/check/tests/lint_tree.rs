//! The linter on trees: the real workspace must be clean, and each rule
//! must fire on a synthetic tree seeded with exactly its violation.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

use fib_check::lint::{self, Finding};

/// The workspace root, two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// The repo's own invariants hold — the same gate CI runs via the
/// `fibcheck` binary, exercised as a library call.
#[test]
fn workspace_is_clean() {
    let findings = lint::run(&repo_root()).expect("lint runs");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

static TREE_SEQ: AtomicU32 = AtomicU32::new(0);

/// A throwaway workspace tree under the target-local temp dir. Removed
/// on drop; a unique per-process sequence keeps parallel tests apart.
struct Tree {
    root: PathBuf,
}

impl Tree {
    fn new() -> Self {
        let seq = TREE_SEQ.fetch_add(1, Ordering::Relaxed);
        let root =
            std::env::temp_dir().join(format!("fibcheck-lint-tree-{}-{seq}", std::process::id()));
        fs::create_dir_all(&root).expect("create tree root");
        fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
        Self { root }
    }

    fn file(&self, rel: &str, contents: &str) -> &Self {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("rel has a parent")).expect("mkdir");
        fs::write(path, contents).expect("write source");
        self
    }

    fn run(&self) -> Vec<Finding> {
        lint::run(&self.root).expect("lint runs on synthetic tree")
    }
}

impl Drop for Tree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unsafe_outside_allowlist_fires() {
    let tree = Tree::new();
    tree.file(
        "crates/core/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    let findings = tree.run();
    assert!(
        rules_of(&findings).contains(&"unsafe-allowlist"),
        "expected unsafe-allowlist, got {findings:?}"
    );
    let f = findings
        .iter()
        .find(|f| f.rule == "unsafe-allowlist")
        .expect("checked above");
    assert_eq!(f.line, 3, "finding points at the unsafe block");
}

#[test]
fn unsafe_inside_allowlist_is_permitted() {
    let tree = Tree::new();
    // snapcell.rs is on the allowlist; the keyword alone must not fire.
    tree.file(
        "crates/router/src/lib.rs",
        "#![deny(unsafe_code)]\npub mod snapcell;\n",
    );
    tree.file(
        "crates/router/src/snapcell.rs",
        "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    let findings = tree.run();
    assert!(
        !rules_of(&findings).contains(&"unsafe-allowlist"),
        "allowlisted file flagged: {findings:?}"
    );
}

#[test]
fn unsafe_in_comments_and_strings_is_ignored() {
    let tree = Tree::new();
    tree.file(
        "crates/core/src/lib.rs",
        concat!(
            "#![deny(unsafe_code)]\n",
            "// unsafe in a comment\n",
            "/* unsafe in /* a nested */ block comment */\n",
            "pub const MSG: &str = \"unsafe in a string\";\n",
            "pub const RAW: &str = r#\"unsafe in a raw string\"#;\n",
        ),
    );
    let findings = tree.run();
    assert!(
        !rules_of(&findings).contains(&"unsafe-allowlist"),
        "comment/string tokens flagged: {findings:?}"
    );
}

#[test]
fn unjustified_ordering_fires_and_justified_passes() {
    let tree = Tree::new();
    tree.file(
        "crates/router/src/lib.rs",
        concat!(
            "#![deny(unsafe_code)]\n",
            "use std::sync::atomic::{AtomicU64, Ordering};\n",
            "pub fn bad(a: &AtomicU64) -> u64 {\n",
            "    a.load(Ordering::Acquire)\n",
            "}\n",
            "pub fn good(a: &AtomicU64) -> u64 {\n",
            "    // ordering: pairs with the Release store in `publish`.\n",
            "    a.load(Ordering::Acquire)\n",
            "}\n",
        ),
    );
    let findings = tree.run();
    let ordering: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "ordering-justification")
        .collect();
    assert_eq!(
        ordering.len(),
        1,
        "exactly the unjustified site fires: {findings:?}"
    );
    assert_eq!(ordering[0].line, 4);
}

#[test]
fn hot_path_panic_fires_only_when_reachable() {
    let tree = Tree::new();
    tree.file(
        "crates/core/src/lib.rs",
        concat!(
            "#![deny(unsafe_code)]\n",
            "pub fn lookup_batch(xs: &[u32]) -> u32 {\n",
            "    helper(xs)\n",
            "}\n",
            "fn helper(xs: &[u32]) -> u32 {\n",
            "    xs.first().copied().unwrap()\n",
            "}\n",
            "pub fn build_only() {\n",
            "    panic!(\"not reachable from a lookup root\");\n",
            "}\n",
        ),
    );
    let findings = tree.run();
    let hot: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "hot-path-purity")
        .collect();
    assert_eq!(
        hot.len(),
        1,
        "only the reachable unwrap fires: {findings:?}"
    );
    assert_eq!(hot[0].line, 6);
}

#[test]
fn hot_path_allow_marker_suppresses() {
    let tree = Tree::new();
    tree.file(
        "crates/core/src/lib.rs",
        concat!(
            "#![deny(unsafe_code)]\n",
            "pub fn lookup_batch(xs: &[u32]) -> u32 {\n",
            "    assert!(!xs.is_empty()); // fibcheck: allow(hot-path): once per batch\n",
            "    xs[0]\n",
            "}\n",
        ),
    );
    let findings = tree.run();
    assert!(
        !rules_of(&findings).contains(&"hot-path-purity"),
        "suppressed line still flagged: {findings:?}"
    );
}

#[test]
fn missing_deny_unsafe_fires() {
    let tree = Tree::new();
    tree.file("crates/core/src/lib.rs", "pub fn f() {}\n");
    let findings = tree.run();
    assert!(
        rules_of(&findings).contains(&"deny-unsafe-missing"),
        "expected deny-unsafe-missing, got {findings:?}"
    );
}

#[test]
fn findings_render_as_file_line_rule() {
    let tree = Tree::new();
    tree.file("crates/core/src/lib.rs", "pub fn f() {}\n");
    let findings = tree.run();
    let rendered = findings[0].to_string();
    assert!(
        rendered.contains("lib.rs:1: deny-unsafe-missing:"),
        "unexpected rendering: {rendered}"
    );
}
