//! Exhaustive crash-point enumeration of the spool persistence
//! protocol, plus the mutation-kill pass over the seeded protocol bugs.
//!
//! `FIB_FAULT_SEED` (default 1) varies the workload + tear randomness;
//! `FIB_FAULT_MODE` (`drop` | `keep` | `torn`, default `drop`) picks the
//! unsynced-tail semantics — CI sweeps the matrix.

use fib_check::crash::{
    replay_guard_probe, run_churn, sweep, sweep_spool_config, verify_recovery, CrashScript,
};
use fib_router::spoolfs::{FaultConfig, TailPolicy};
use fib_router::{SpoolConfig, SpoolHealth, SpoolMutant};
use std::time::Duration;

fn env_seed() -> u64 {
    std::env::var("FIB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn env_tail() -> TailPolicy {
    match std::env::var("FIB_FAULT_MODE").as_deref() {
        Ok("keep") => TailPolicy::Keep,
        Ok("torn") => TailPolicy::Torn,
        _ => TailPolicy::Drop,
    }
}

fn script() -> CrashScript {
    CrashScript::new(env_seed(), 250, 160)
}

#[test]
fn every_crash_point_recovers_an_oracle_consistent_fib() {
    let script = script();
    let report = sweep(&script, env_seed(), env_tail(), SpoolMutant::None);
    assert!(
        report.violations.is_empty(),
        "oracle divergences at crash points: {:?}",
        report.violations
    );
    assert!(
        report.crash_points >= 200,
        "workload too small to be exhaustive: {} ops",
        report.crash_points
    );
    assert!(
        report.distinct_states >= 200,
        "only {} distinct durable crash states (need ≥ 200)",
        report.distinct_states
    );
}

#[test]
fn torn_tails_never_reach_the_control_fib() {
    // Regardless of the env-selected mode, the torn-tail policy (random
    // partial survival + seeded bit flips in unsynced spans) must also
    // be clean: the per-record journal checksum and the image lint are
    // what stand between a half-written sector and the FIB.
    let script = script();
    let report = sweep(
        &script,
        env_seed() ^ 0xD15C,
        TailPolicy::Torn,
        SpoolMutant::None,
    );
    assert!(
        report.violations.is_empty(),
        "torn-tail divergences: {:?}",
        report.violations
    );
}

/// Each seeded protocol mutant must be caught by the same sweep that
/// passes clean on the correct protocol — otherwise the harness is too
/// weak to defend the invariant it claims to check.
fn assert_mutant_caught(mutant: SpoolMutant, tail: TailPolicy) {
    let script = script();
    let report = sweep(&script, env_seed(), tail, mutant);
    assert!(
        !report.violations.is_empty(),
        "{mutant:?} survived {} crash points undetected",
        report.crash_points
    );
}

#[test]
fn mutant_skip_fsync_is_caught() {
    assert_mutant_caught(SpoolMutant::SkipFsync, TailPolicy::Drop);
}

#[test]
fn mutant_rename_before_sync_is_caught() {
    assert_mutant_caught(SpoolMutant::RenameBeforeSync, TailPolicy::Drop);
}

#[test]
fn mutant_replay_past_tail_is_caught() {
    let script = script();
    // Guard: the correct protocol tolerates a bit-rotted tail record —
    // the per-record checksum stops replay there, recovering exactly the
    // acknowledged state.
    replay_guard_probe(&script, env_seed(), sweep_spool_config(SpoolMutant::None))
        .expect("checksum guard must stop replay at the rotted record");
    // The mutant applies the garbage and serves a FIB matching no
    // oracle state.
    let verdict = replay_guard_probe(
        &script,
        env_seed(),
        sweep_spool_config(SpoolMutant::ReplayPastTail),
    );
    assert!(
        verdict.is_err(),
        "ReplayPastTail survived the rotted-tail probe"
    );
}

#[test]
fn transient_write_failure_degrades_then_recovers_with_respill() {
    let script = script();
    // Fail a window of operations mid-workload: the spool must degrade
    // (not die), back off, re-spill the newest epoch once the window
    // passes, and report Healthy again — with the recovery counted.
    // Degraded retries consume roughly one filesystem op each, so the
    // retry budget must outlast the op-indexed outage window.
    let spool = SpoolConfig {
        keep: 1,
        retry_base: Duration::from_millis(1),
        retry_max: Duration::from_millis(8),
        max_retries: 8,
        ..SpoolConfig::default()
    };
    let run = run_churn(
        &script,
        env_seed(),
        FaultConfig {
            fail_ops: Some((40, 44)),
            ..FaultConfig::default()
        },
        spool,
    );
    assert!(
        run.served_final_ok,
        "forwarding must ride through the outage"
    );
    // The workload runs long past the outage, so the spool must have
    // recovered and re-acked updates near the end.
    let acked = run.acked.expect("spool recovered and acked updates");
    assert!(
        acked > script.updates.len() / 2,
        "ack floor {acked} stuck before the outage window"
    );
    // And the recovered-on-reboot state honours that floor.
    verify_recovery(&script, &run, spool)
        .expect("post-recovery crash state must restore past the ack floor");
}

#[test]
fn enospc_suspends_after_retries_and_full_state_still_recovers() {
    let script = script();
    let run = run_churn(
        &script,
        env_seed(),
        FaultConfig {
            // Enough budget for the base spill + some churn, then the
            // disk is full for good.
            enospc_after_bytes: Some(64 * 1024),
            ..FaultConfig::default()
        },
        sweep_spool_config(SpoolMutant::None),
    );
    assert!(run.served_final_ok, "forwarding must outlive a full disk");
    verify_recovery(&script, &run, sweep_spool_config(SpoolMutant::None))
        .expect("durable prefix must stay recoverable after ENOSPC");
}

#[test]
fn suspended_spool_resumes_to_healthy_after_operator_clears_fault() {
    use fib_core::PrefixDag;
    use fib_router::spoolfs::{FaultFs, SpoolFs};
    use fib_router::{Router, RouterConfig};
    use std::sync::Arc;

    let script = script();
    let fs = FaultFs::with_config(
        7,
        FaultConfig {
            enospc_after_bytes: Some(24 * 1024),
            ..FaultConfig::default()
        },
    );
    let shared: Arc<dyn SpoolFs> = Arc::new(fs.clone());
    let mut router: Router<u32, PrefixDag<u32>> = Router::new(
        script.base.clone(),
        RouterConfig {
            publish_every: Some(20),
            background_rebuild: false,
            ..RouterConfig::default()
        },
    );
    router
        .enable_spool_with(shared, "/spool", sweep_spool_config(SpoolMutant::None))
        .expect("spool dir");
    for op in &script.updates {
        match *op {
            fib_workload::updates::UpdateOp::Announce(p, nh) => router.announce(p, nh),
            fib_workload::updates::UpdateOp::Withdraw(p) => router.withdraw(p),
        }
    }
    assert!(
        matches!(router.spool_health(), Some(SpoolHealth::Suspended { .. })),
        "retry budget must exhaust against a permanently full disk: {:?}",
        router.spool_health()
    );
    // Operator frees the disk and resumes: one call re-spills the
    // current epoch and the spool is healthy again.
    fs.reconfigure(|c| c.enospc_after_bytes = None);
    let health = router.resume_spool().expect("spool armed");
    assert_eq!(
        health,
        SpoolHealth::Healthy,
        "resume must re-spill and heal"
    );
    assert!(router.health().spool_recoveries >= 1);
}
