//! Mutation-kill suite: every seeded protocol bug in
//! [`fib_router::snapcell::Mutation`] must be flagged by the model
//! checker. A checker that cannot kill known-bad variants of the
//! protocol proves nothing about the good one.
//!
//! One scenario drives all kills: one reader refreshing against a
//! publisher that publishes twice. The second publish is what makes the
//! reclamation path dangerous — it retires the snapshot the reader may
//! still be holding mid-refresh. The same scenario under
//! [`Mutation::None`] is verified clean first, so a kill is evidence
//! against the mutant, not against the scenario.

use std::sync::Arc;

use fib_check::model::{self, Config, Report, ViolationKind};
use fib_check::sync::ModelSnapCell;
use fib_router::snapcell::Mutation;

fn explore_with(mutation: Mutation) -> Report {
    model::explore(
        Config {
            preemption_bound: 2,
            max_executions: 40_000_000,
        },
        move || {
            let cell = Arc::new(ModelSnapCell::with_mutation(Arc::new(1u64), mutation));
            let mut reader = cell.reader();
            let publisher = {
                let cell = Arc::clone(&cell);
                model::spawn(move || {
                    cell.publish(Arc::new(2));
                    cell.publish(Arc::new(3));
                })
            };
            let t = model::spawn(move || {
                for _ in 0..2 {
                    let value = **reader.get();
                    let generation = reader.generation();
                    assert!(
                        value >= generation,
                        "snapshot value {value} staler than generation {generation}"
                    );
                }
            });
            t.join();
            publisher.join();
        },
    )
}

/// The scenario itself is clean under the correct protocol — kills
/// below indict the mutants, not the harness.
#[test]
fn baseline_protocol_survives_the_kill_scenario() {
    let report = explore_with(Mutation::None);
    report.assert_clean();
    println!(
        "baseline: {} executions, max trace {}",
        report.executions, report.max_trace_len
    );
}

/// Reader dereferences `current` without re-validating the generation:
/// a publish between announce and dereference frees the cell under it.
#[test]
fn kill_skip_validate() {
    explore_with(Mutation::SkipValidate).assert_violated(ViolationKind::UseAfterFree);
}

/// Announce demoted to `Relaxed`: the writer's hazard scan can read the
/// stale IDLE from before the announcement and free the pinned cell.
#[test]
fn kill_relaxed_announce() {
    explore_with(Mutation::RelaxedAnnounce).assert_violated(ViolationKind::UseAfterFree);
}

/// Validate demoted to `Relaxed`: a stale generation read passes
/// validation after a publish already retired and freed the cell.
#[test]
fn kill_stale_gen_read() {
    explore_with(Mutation::StaleGenRead).assert_violated(ViolationKind::UseAfterFree);
}

/// Hazard floor off by one: the writer frees a cell whose generation is
/// exactly one past the oldest announcement — the one still pinned.
#[test]
fn kill_reclaim_off_by_one() {
    explore_with(Mutation::ReclaimOffByOne).assert_violated(ViolationKind::UseAfterFree);
}

/// Reclamation without scanning hazard slots at all.
#[test]
fn kill_skip_hazard_scan() {
    explore_with(Mutation::SkipHazardScan).assert_violated(ViolationKind::UseAfterFree);
}

/// The same cell retired twice: the kill needs no reader at all — the
/// first quiescent reclaim frees it twice.
#[test]
fn kill_double_retire() {
    let report = model::explore(
        Config {
            preemption_bound: 2,
            max_executions: 1_000_000,
        },
        || {
            let cell = ModelSnapCell::with_mutation(Arc::new(1u64), Mutation::DoubleRetire);
            cell.publish(Arc::new(2));
        },
    );
    report.assert_violated(ViolationKind::DoubleFree);
}
