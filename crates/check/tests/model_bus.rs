//! Exhaustive exploration of the update-bus channel — the same
//! `BusSenderCore`/`BusReceiverCore` source `fib_router::runtime` ships
//! under `UpdateBus`, run on the model shim. Properties: no update is
//! lost or duplicated, per-producer FIFO order survives interleaving,
//! and sends to a dropped receiver fail cleanly instead of queueing
//! into the void.

use fib_check::model::{self, Config};
use fib_check::sync::model_bus_channel;

#[test]
fn two_producers_no_loss_no_dup_fifo() {
    let report = model::explore(
        Config {
            preemption_bound: 2,
            max_executions: 40_000_000,
        },
        || {
            let (tx, rx) = model_bus_channel::<(u8, u8)>();
            let tx2 = tx.clone();
            let p1 = model::spawn(move || {
                assert!(tx.send((1, 0)));
                assert!(tx.send((1, 1)));
            });
            let p2 = model::spawn(move || {
                assert!(tx2.send((2, 0)));
                assert!(tx2.send((2, 1)));
            });
            // Consumer drains concurrently (bounded polls), then joins
            // the producers and drains the remainder.
            let mut got: Vec<(u8, u8)> = Vec::new();
            for _ in 0..3 {
                if let Some(update) = rx.try_recv() {
                    got.push(update);
                }
            }
            p1.join();
            p2.join();
            while let Some(update) = rx.try_recv() {
                got.push(update);
            }
            assert_eq!(got.len(), 4, "lost or duplicated updates: {got:?}");
            for producer in [1u8, 2] {
                let seqs: Vec<u8> = got
                    .iter()
                    .filter(|(p, _)| *p == producer)
                    .map(|(_, s)| *s)
                    .collect();
                assert_eq!(seqs, vec![0, 1], "producer {producer} out of order");
            }
        },
    );
    report.assert_clean();
    assert!(report.executions > 1);
    println!("bus 2P/1C: {} executions", report.executions);
}

#[test]
fn send_after_receiver_drop_fails() {
    let report = model::explore(
        Config {
            preemption_bound: 3,
            max_executions: 40_000_000,
        },
        || {
            let (tx, rx) = model_bus_channel::<u32>();
            let producer = model::spawn(move || {
                // Whether each send lands depends on the schedule; what
                // must hold is that an accepted send happened strictly
                // before the receiver dropped, never after.
                let first = tx.send(1);
                let second = tx.send(2);
                assert!(first || !second, "send succeeded after a failed one");
            });
            let consumer = model::spawn(move || {
                let got = rx.try_recv();
                assert!(got.is_none() || got == Some(1));
                drop(rx);
            });
            producer.join();
            consumer.join();
        },
    );
    report.assert_clean();
}
