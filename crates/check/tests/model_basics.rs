//! Sanity checks for the model runtime itself: scheduling, weak-memory
//! value choices, happens-before via release/acquire, mutex deadlock
//! detection, and the slab heap's structural violations.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use fib_check::model::{self, Config, ViolationKind};
use fib_check::sync::{ModelAtomicU64, ModelMutex, ModelShim};
use fib_router::shim::{AtomU64, MutexLike, Ordering, Shim};

fn cfg(bound: usize) -> Config {
    Config {
        preemption_bound: bound,
        max_executions: 1_000_000,
    }
}

#[test]
fn single_thread_is_one_execution() {
    let report = model::explore(cfg(2), || {
        let a = ModelAtomicU64::new(0);
        a.store(1, Ordering::SeqCst);
        a.store(2, Ordering::Relaxed);
        // Own stores are our coherence floor: no value choice to make.
        assert_eq!(a.load(Ordering::Relaxed), 2);
    });
    report.assert_clean();
    assert_eq!(report.executions, 1);
}

#[test]
fn two_threads_interleave() {
    let report = model::explore(cfg(4), || {
        let a = Arc::new(ModelAtomicU64::new(0));
        let b = Arc::clone(&a);
        let t = model::spawn(move || {
            b.fetch_add(1, Ordering::SeqCst);
            b.fetch_add(1, Ordering::SeqCst);
        });
        a.fetch_add(1, Ordering::SeqCst);
        a.fetch_add(1, Ordering::SeqCst);
        t.join();
        assert_eq!(a.load(Ordering::SeqCst), 4);
    });
    report.assert_clean();
    // Two threads, two RMWs each: more than one interleaving must exist.
    assert!(
        report.executions > 1,
        "only {} executions",
        report.executions
    );
}

#[test]
fn relaxed_load_explores_both_values() {
    let seen: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let seen2 = Arc::clone(&seen);
    let report = model::explore(cfg(2), move || {
        let flag = Arc::new(ModelAtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let t = model::spawn(move || {
            f2.store(1, Ordering::Relaxed);
        });
        let v = flag.load(Ordering::Relaxed);
        seen2.lock().unwrap().insert(v);
        t.join();
    });
    report.assert_clean();
    let seen = seen.lock().unwrap();
    assert!(
        seen.contains(&0) && seen.contains(&1),
        "expected both 0 and 1 to be observable, saw {seen:?}"
    );
}

#[test]
fn release_acquire_synchronizes() {
    let report = model::explore(cfg(2), || {
        let data = Arc::new(ModelAtomicU64::new(0));
        let flag = Arc::new(ModelAtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = model::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            // Synchronized-with: the relaxed data store must be visible.
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
    report.assert_clean();
}

#[test]
fn relaxed_publication_is_caught() {
    // Same shape but the flag store is relaxed: the stale data read must
    // be explored and the assertion must fire in some execution.
    let report = model::explore(cfg(2), || {
        let data = Arc::new(ModelAtomicU64::new(0));
        let flag = Arc::new(ModelAtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = model::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
    report.assert_violated(ViolationKind::Panic);
}

#[test]
fn seqcst_load_reads_no_older_than_last_sc_store() {
    let report = model::explore(cfg(2), || {
        let a = Arc::new(ModelAtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let t = model::spawn(move || {
            a2.store(7, Ordering::SeqCst);
        });
        t.join();
        // The SC store happens-before the join completes; an SC load may
        // not skip past it.
        assert_eq!(a.load(Ordering::SeqCst), 7);
    });
    report.assert_clean();
}

#[test]
fn mutex_provides_mutual_exclusion_and_hb() {
    let report = model::explore(cfg(3), || {
        let m = Arc::new(<ModelMutex<u64> as MutexLike<u64>>::new(0));
        let m2 = Arc::clone(&m);
        let t = model::spawn(move || {
            *m2.lock() += 1;
        });
        *m.lock() += 1;
        t.join();
        assert_eq!(*m.lock(), 2);
    });
    report.assert_clean();
    assert!(report.executions > 1);
}

#[test]
fn abba_deadlock_is_detected() {
    let report = model::explore(cfg(4), || {
        let a = Arc::new(<ModelMutex<u64> as MutexLike<u64>>::new(0));
        let b = Arc::new(<ModelMutex<u64> as MutexLike<u64>>::new(0));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = model::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop(_ga);
        drop(_gb);
        t.join();
    });
    report.assert_violated(ViolationKind::Deadlock);
}

#[test]
fn use_after_free_is_detected() {
    let report = model::explore(cfg(2), || {
        let p = ModelShim::alloc(123u64);
        ModelShim::free(p);
        let _ = ModelShim::read::<u64>(p);
    });
    report.assert_violated(ViolationKind::UseAfterFree);
}

#[test]
fn double_free_is_detected() {
    let report = model::explore(cfg(2), || {
        let p = ModelShim::alloc(123u64);
        ModelShim::free(p);
        ModelShim::free(p);
    });
    report.assert_violated(ViolationKind::DoubleFree);
}

#[test]
fn leak_is_detected() {
    let report = model::explore(cfg(2), || {
        let _p = ModelShim::alloc(123u64);
    });
    report.assert_violated(ViolationKind::Leak);
}

#[test]
fn preemption_bound_prunes_the_space() {
    let run = |bound| {
        model::explore(cfg(bound), || {
            let a = Arc::new(ModelAtomicU64::new(0));
            let b = Arc::clone(&a);
            let t = model::spawn(move || {
                for _ in 0..3 {
                    b.fetch_add(1, Ordering::SeqCst);
                }
            });
            for _ in 0..3 {
                a.fetch_add(1, Ordering::SeqCst);
            }
            t.join();
        })
    };
    let tight = run(1);
    let loose = run(4);
    tight.assert_clean();
    loose.assert_clean();
    assert!(
        tight.executions < loose.executions,
        "bound 1 ({}) should explore fewer executions than bound 4 ({})",
        tight.executions,
        loose.executions
    );
}
