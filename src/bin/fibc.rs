//! `fibc` — the FIB image compiler/inspector/server.
//!
//! Drives the whole `fibimage/v1` pipeline from the shell:
//!
//! ```sh
//! # Compile a routes file into an image
//! # (engine: xbw|pdag|serialized|multibit|lctrie|vsdag).
//! fibc compile --engine serialized --routes routes.txt --out fib.img
//!
//! # Or compile a synthetic paper instance (taz, hbone, …) at a scale.
//! fibc compile --engine xbw --instance taz --scale 0.1 --out taz.img
//!
//! # What is in an image?
//! fibc inspect fib.img
//!
//! # Serve lookups from the image (zero-copy view; no rebuild).
//! echo 8.8.8.8 | fibc serve fib.img
//! fibc serve fib.img --probe 100000        # deterministic benchmark probes
//! ```
//!
//! Routes files are plain text: one `prefix next_hop_index` pair per line
//! (`10.0.0.0/8 3`, `2001:db8::/32 1`), `#` comments allowed. The address
//! family is inferred from the first route (or forced with `--v6`).

use std::path::Path;
use std::process::ExitCode;

use fibcomp::core::image::sections;
use fibcomp::core::lint as image_lint;
use fibcomp::core::{
    any_view, compile_vrf_set, write_image, write_image_hot, write_vrf_image, AnyView, BuildConfig,
    EngineKind, FibBuild, FibImage, FibLookup, HotConfig, HotSlab, ImageCodec, ImageError,
    MultibitDag, PrefixDag, SerializedDag, VarStrideDag, VrfPolicy, VrfSetRef, VrfTable, XbwFib,
    XbwStorage,
};
use fibcomp::router::{scan_spool, LatencyHistogram, StdFs};
use fibcomp::trie::{Address, BinaryTrie, LcTrie, NextHop, Prefix};
use fibcomp::workload::loadgen::{AddrStream, KeyModel};
use fibcomp::workload::rng::Xoshiro256;
use fibcomp::workload::vrf::{fleet_weights, instance_fleet, mixed_keys};
use fibcomp::workload::{traces, HeatSummary};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => compile(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("spool-status") => spool_status(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fibc: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  fibc compile --engine <xbw|pdag|serialized|multibit|lctrie|vsdag> \\
               (--routes FILE | --instance NAME [--scale S] [--seed N]) \\
               --out IMG [--v6] [--xbw-mode succinct|entropy] [--lambda N] \\
               [--stride N] [--vs-budget F] [--vs-max-stride N] \\
               [--epoch N] [--no-routes] [--heat [--heat-samples N]]
  fibc compile --vrfs N [--instance NAME] [--scale S] [--overlap F] \\
               [--vrf-policy shared|auto] [--vrf-skew S] [--seed N] \\
               --out IMG    (multi-tenant set: one shared dedup arena)
  fibc inspect IMG
  fibc lint IMG
  fibc serve IMG [--probe N | --duration S] [--threads N] \
                 [--keys uniform|zipf|bursty] [--batch N] [--seed N]
                 (without --probe/--duration: addresses on stdin, batched;
                  vrfset images take 'VRF ADDR' lines / mixed-VRF probes)
  fibc serve --spool DIR [--health-every S] [serve options]
                 (newest valid spool image; health one-liner on stderr)
  fibc spool-status DIR";

/// `--key value` argument lookup.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn parse_routes<A: Address>(path: &str) -> Result<BinaryTrie<A>, String>
where
    Prefix<A>: std::str::FromStr,
    <Prefix<A> as std::str::FromStr>::Err: std::fmt::Display,
{
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut trie = BinaryTrie::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(prefix), Some(nh)) = (parts.next(), parts.next()) else {
            return Err(format!("{path}:{}: want 'prefix next_hop'", lineno + 1));
        };
        let prefix: Prefix<A> = prefix
            .parse()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let nh: u32 = nh
            .parse()
            .map_err(|e| format!("{path}:{}: bad next-hop: {e}", lineno + 1))?;
        trie.insert(prefix, NextHop::new(nh));
    }
    Ok(trie)
}

fn build_config(args: &[String]) -> Result<BuildConfig, String> {
    let mut config = BuildConfig::default();
    if let Some(lambda) = opt(args, "--lambda") {
        config.lambda = Some(lambda.parse().map_err(|e| format!("--lambda: {e}"))?);
    }
    if let Some(stride) = opt(args, "--stride") {
        config.stride = stride.parse().map_err(|e| format!("--stride: {e}"))?;
    }
    if let Some(budget) = opt(args, "--vs-budget") {
        config.vs_budget = budget.parse().map_err(|e| format!("--vs-budget: {e}"))?;
    }
    if let Some(max_stride) = opt(args, "--vs-max-stride") {
        config.vs_max_stride = max_stride
            .parse()
            .map_err(|e| format!("--vs-max-stride: {e}"))?;
    }
    config.xbw_storage = match opt(args, "--xbw-mode").unwrap_or("entropy") {
        "succinct" => XbwStorage::Succinct,
        "entropy" => XbwStorage::Entropy,
        other => return Err(format!("--xbw-mode: unknown mode '{other}'")),
    };
    Ok(config)
}

fn compile(args: &[String]) -> Result<(), String> {
    if let Some(vrfs) = opt(args, "--vrfs") {
        let vrfs: usize = vrfs.parse().map_err(|e| format!("--vrfs: {e}"))?;
        return compile_vrfs(args, vrfs);
    }
    let engine = EngineKind::parse(opt(args, "--engine").ok_or("--engine is required")?)
        .ok_or("unknown engine (want xbw|pdag|serialized|multibit|lctrie|vsdag)")?;
    let out = opt(args, "--out").ok_or("--out is required")?;
    let epoch: u64 = opt(args, "--epoch")
        .unwrap_or("0")
        .parse()
        .map_err(|e| format!("--epoch: {e}"))?;
    let config = build_config(args)?;
    let with_routes = !flag(args, "--no-routes");
    // --heat: sample a Zipf-skewed trace over the routes, compile a hot
    // slab from it, and embed it as the image's HOT_SLAB section (image
    // views then front every lookup with the slab for free).
    let heat: Option<usize> = if flag(args, "--heat") {
        Some(
            opt(args, "--heat-samples")
                .unwrap_or("65536")
                .parse()
                .map_err(|e| format!("--heat-samples: {e}"))?,
        )
    } else {
        None
    };

    if flag(args, "--v6") {
        let routes = opt(args, "--routes").ok_or("--routes is required with --v6")?;
        let trie = parse_routes::<u128>(routes)?;
        compile_trie(&trie, engine, &config, epoch, with_routes, heat, out)
    } else if let Some(routes) = opt(args, "--routes") {
        let trie = parse_routes::<u32>(routes)?;
        compile_trie(&trie, engine, &config, epoch, with_routes, heat, out)
    } else if let Some(name) = opt(args, "--instance") {
        let scale: f64 = opt(args, "--scale")
            .unwrap_or("1.0")
            .parse()
            .map_err(|e| format!("--scale: {e}"))?;
        let seed: u64 = opt(args, "--seed")
            .unwrap_or("3851")
            .parse()
            .map_err(|e| format!("--seed: {e}"))?;
        let mut inst = fibcomp::workload::instances::by_name(name)
            .ok_or_else(|| format!("unknown paper instance '{name}'"))?;
        inst.n_prefixes = ((inst.n_prefixes as f64 * scale) as usize).max(64);
        let trie = inst.build(seed);
        compile_trie(&trie, engine, &config, epoch, with_routes, heat, out)
    } else {
        Err("need --routes FILE or --instance NAME".into())
    }
}

fn compile_trie<A: Address>(
    trie: &BinaryTrie<A>,
    engine: EngineKind,
    config: &BuildConfig,
    epoch: u64,
    with_routes: bool,
    heat: Option<usize>,
    out: &str,
) -> Result<(), String> {
    let routes = with_routes.then_some(trie);
    // --heat drives two things off the same sampled trace: the HOT_SLAB
    // section every engine can front lookups with, and — for heat-aware
    // engines like vsdag — the per-node traffic weights its stride DP
    // lays the table out around (via `FibBuild::build_weighted`).
    let sampled = match heat {
        None => None,
        Some(samples) => {
            let hot_config = HotConfig::for_width(A::WIDTH);
            let zipf = traces::ZipfTrace::new(trie, 1.0);
            let addrs = zipf.generate(&mut Xoshiro256::seed_from_u64(0x4EA7), samples);
            let summary = HeatSummary::sample_addrs(hot_config.depth, addrs.iter().copied());
            let (slab, stats) = HotSlab::compile(trie, summary.entries(), &hot_config);
            println!(
                "hot slab: depth {} promoted {} ({} impure, {} dropped), \
                 coverage {:.3} of {} sampled packets",
                slab.depth(),
                stats.promoted,
                stats.impure,
                stats.dropped,
                stats.coverage,
                samples
            );
            Some((slab, summary))
        }
    };
    let slab = sampled.as_ref().map(|(slab, _)| slab);
    let weights = sampled
        .as_ref()
        .map(|(_, summary)| (summary.entries(), summary.depth()));
    let bytes = match engine {
        EngineKind::Xbw => encode::<A, XbwFib<A>>(trie, config, routes, epoch, slab, weights),
        EngineKind::PrefixDag => {
            encode::<A, PrefixDag<A>>(trie, config, routes, epoch, slab, weights)
        }
        EngineKind::SerializedDag => {
            encode::<A, SerializedDag<A>>(trie, config, routes, epoch, slab, weights)
        }
        EngineKind::MultibitDag => {
            encode::<A, MultibitDag<A>>(trie, config, routes, epoch, slab, weights)
        }
        EngineKind::LcTrie => encode::<A, LcTrie<A>>(trie, config, routes, epoch, slab, weights),
        EngineKind::VsDag => {
            encode::<A, VarStrideDag<A>>(trie, config, routes, epoch, slab, weights)
        }
        EngineKind::VrfSet => {
            return Err("vrfset images hold many tables; compile one with --vrfs N".into())
        }
    }
    .map_err(|e| e.to_string())?;
    std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "compiled {} routes -> {} ({} engine, {} bytes)",
        trie.len(),
        out,
        engine.name(),
        bytes.len()
    );
    Ok(())
}

fn encode<A: Address, E: ImageCodec<A> + FibBuild<A>>(
    trie: &BinaryTrie<A>,
    config: &BuildConfig,
    routes: Option<&BinaryTrie<A>>,
    epoch: u64,
    slab: Option<&HotSlab>,
    weights: Option<(&[(u64, u64)], u8)>,
) -> Result<Vec<u8>, ImageError> {
    let engine = E::build_weighted(trie, config, weights);
    match slab {
        Some(slab) => write_image_hot(&engine, routes, epoch, slab),
        None => write_image(&engine, routes, epoch),
    }
}

/// `fibc compile --vrfs N`: derives a multi-tenant fleet from a paper
/// instance (90% shared base / 10% per-VRF churn by default), compiles
/// it into one shared dedup arena under the chosen placement policy, and
/// reports the sharing ratio against independent compilation.
fn compile_vrfs(args: &[String], vrfs: usize) -> Result<(), String> {
    if vrfs == 0 {
        return Err("--vrfs: need at least one table".into());
    }
    let out = opt(args, "--out").ok_or("--out is required")?;
    let epoch: u64 = opt(args, "--epoch")
        .unwrap_or("0")
        .parse()
        .map_err(|e| format!("--epoch: {e}"))?;
    let config = build_config(args)?;
    let instance = opt(args, "--instance").unwrap_or("taz");
    let scale: f64 = opt(args, "--scale")
        .unwrap_or("1.0")
        .parse()
        .map_err(|e| format!("--scale: {e}"))?;
    let overlap: f64 = opt(args, "--overlap")
        .unwrap_or("0.9")
        .parse()
        .map_err(|e| format!("--overlap: {e}"))?;
    if !(0.0..=1.0).contains(&overlap) {
        return Err(format!("--overlap: want 0.0..=1.0, got {overlap}"));
    }
    let skew: f64 = opt(args, "--vrf-skew")
        .unwrap_or("1.0")
        .parse()
        .map_err(|e| format!("--vrf-skew: {e}"))?;
    let seed: u64 = opt(args, "--seed")
        .unwrap_or("3851")
        .parse()
        .map_err(|e| format!("--seed: {e}"))?;
    let policy = match opt(args, "--vrf-policy").unwrap_or("shared") {
        "shared" => VrfPolicy::Shared,
        "auto" => VrfPolicy::Auto {
            weights: fleet_weights(vrfs, skew),
        },
        other => return Err(format!("--vrf-policy: unknown policy '{other}'")),
    };
    let fleet = instance_fleet(instance, scale, vrfs, overlap, seed)
        .ok_or_else(|| format!("unknown paper instance '{instance}'"))?;
    let tables: Vec<VrfTable<'_, u32>> = fleet
        .iter()
        .enumerate()
        .map(|(i, trie)| VrfTable { id: i as u32, trie })
        .collect();
    let set = compile_vrf_set(&tables, &config, &policy);
    let bytes = write_vrf_image(&set, epoch).map_err(|e| e.to_string())?;
    std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    let stats = &set.stats;
    println!(
        "compiled {vrfs} VRFs from {instance} (overlap {overlap}) -> {out} ({} bytes)",
        bytes.len()
    );
    println!(
        "  shared arena   {} unique nodes for {} reachable ({:.2}x sharing, {} tables)",
        stats.unique_nodes,
        stats.total_nodes,
        stats.sharing_ratio(),
        stats.shared_tables
    );
    println!(
        "  resident       {} B vs {} B independent ({:.1}% saved)",
        stats.resident_bytes(),
        stats.independent_bytes,
        stats.bytes_saved() as f64 / stats.independent_bytes.max(1) as f64 * 100.0
    );
    Ok(())
}

fn section_name(id: u32) -> &'static str {
    if id >= sections::VRF_TABLE_BASE {
        return "vrf.table";
    }
    match id {
        sections::PARAMS => "params",
        sections::ROUTES => "routes",
        sections::XBW_SI => "xbw.s_i",
        sections::XBW_SA => "xbw.s_alpha",
        sections::XBW_LABELS => "xbw.labels",
        sections::PDAG_NODES => "pdag.nodes",
        sections::SER_ENTRIES => "serialized.entries",
        sections::SER_NODES => "serialized.nodes",
        sections::MB_SLOTS => "multibit.slots",
        sections::VS_NODES => "vsdag.nodes",
        sections::VS_SLOTS => "vsdag.slots",
        sections::LC_NODES => "lctrie.nodes",
        sections::HOT_SLAB => "hot.slab",
        sections::VRF_DIR => "vrf.dir",
        sections::VRF_PDAG => "vrf.pdag",
        _ => "unknown",
    }
}

fn inspect(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: fibc inspect IMG")?;
    let image = FibImage::load(path).map_err(|e| e.to_string())?;
    let engine = image.engine().map(EngineKind::name).unwrap_or("<unknown>");
    println!("fibimage v{}", image.version());
    println!("  engine        {engine} (id {})", image.engine_id());
    println!("  family        IPv{}", image.family());
    println!("  routes        {}", image.route_count());
    if image.prefix_count() > 0 {
        println!("  leaves        {}", image.prefix_count());
    }
    println!("  epoch         {}", image.epoch());
    println!("  file size     {} bytes", image.words().len() * 8);
    println!("  sections      {}", image.section_table().len());
    let mut engine_payload = 0usize;
    for entry in image.section_table() {
        let bytes = entry.len * 8;
        if entry.id != sections::ROUTES && entry.id != sections::PARAMS {
            engine_payload += bytes;
        }
        println!(
            "    {:<20} id {:#04x}  offset {:>10} B  size {:>10} B",
            section_name(entry.id),
            entry.id,
            entry.offset * 8,
            bytes
        );
    }
    let claimed = image.claimed_size_bytes();
    println!("  engine payload  {engine_payload} bytes");
    println!("  claimed size    {claimed} bytes (engine's own size_bytes at compile time)");
    if claimed > 0 {
        let drift = (engine_payload as f64 - claimed as f64) / claimed as f64 * 100.0;
        println!("  accounting drift {drift:+.2}%");
    }
    if image.engine() == Ok(EngineKind::VrfSet) {
        match image.family() {
            4 => inspect_vrfs::<u32>(&image)?,
            6 => inspect_vrfs::<u128>(&image)?,
            other => return Err(format!("unknown address family {other}")),
        }
    }
    Ok(())
}

/// The vrfset half of `inspect`: aggregate dedup stats, then one row per
/// VRF (placement, routes, and its share of the arena).
fn inspect_vrfs<A: Address>(image: &FibImage) -> Result<(), String> {
    let view = VrfSetRef::<A>::from_image(image).map_err(|e| e.to_string())?;
    let stats = view.stats();
    println!("  vrf set");
    println!(
        "    tables        {} ({} on the shared arena)",
        stats.tables, stats.shared_tables
    );
    println!(
        "    shared arena  {} unique nodes for {} reachable ({:.2}x sharing)",
        stats.unique_nodes,
        stats.total_nodes,
        stats.sharing_ratio()
    );
    println!(
        "    resident      {} B vs {} B independent ({:.1}% saved)",
        stats.resident_bytes(),
        stats.independent_bytes,
        stats.bytes_saved() as f64 / stats.independent_bytes.max(1) as f64 * 100.0
    );
    for t in view.tables() {
        println!(
            "    vrf {:>5}  {:<12} {:>9} routes  {:>9} arena nodes ({:>9} solo)",
            t.id,
            t.engine.choice().name(),
            t.routes,
            t.reachable_nodes,
            t.solo_nodes
        );
    }
    Ok(())
}

/// Deep structural analysis: every issue as `code: detail`, one per
/// line, non-zero exit when anything is wrong. Unlike `inspect`, this
/// re-derives the image's redundant structure (rank directories, DAG
/// shape, section layout) and cross-checks it — a file can pass the
/// checksum and still fail lint.
fn lint(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: fibc lint IMG")?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let issues = image_lint::lint_bytes(&bytes);
    if issues.is_empty() {
        println!("lint: clean");
        return Ok(());
    }
    for i in &issues {
        println!("{i}");
    }
    Err(format!("{}: {} issue(s)", path, issues.len()))
}

fn serve(args: &[String]) -> Result<(), String> {
    if let Some(dir) = opt(args, "--spool") {
        return serve_spool(dir, args);
    }
    let path = args.first().ok_or(
        "usage: fibc serve IMG [--probe N | --duration S] [--threads N] \
         [--keys uniform|zipf|bursty] [--batch N] [--seed N]",
    )?;
    let image = FibImage::load(path).map_err(|e| e.to_string())?;
    match image.family() {
        4 => serve_family::<u32>(&image, args),
        6 => serve_family::<u128>(&image, args),
        other => Err(format!("unknown address family {other}")),
    }
}

/// `fibc serve --spool DIR`: serves the newest image in the spool that
/// lints clean (what a warm restart would pick), with a periodic
/// one-line health snapshot on stderr so an operator tailing the log
/// sees quarantine growth or a journal that stopped bridging.
fn serve_spool(dir: &str, args: &[String]) -> Result<(), String> {
    let fs = StdFs::shared();
    let spool_dir = Path::new(dir).to_path_buf();
    let status = scan_spool(fs.as_ref(), &spool_dir).map_err(|e| format!("{dir}: {e}"))?;
    eprintln!("{status}");
    let picked = status
        .images
        .iter()
        .find(|i| i.issues.is_empty())
        .ok_or_else(|| format!("{dir}: no image lints clean (verdict {})", status.verdict()))?;
    let every: f64 = opt(args, "--health-every")
        .unwrap_or("10")
        .parse()
        .map_err(|e| format!("--health-every: {e}"))?;
    if every > 0.0 {
        let ticker_dir = spool_dir.clone();
        // Detached on purpose: the ticker lives exactly as long as the
        // serve loop's process and holds no state worth joining.
        std::thread::spawn(move || {
            let fs = StdFs::shared();
            loop {
                std::thread::sleep(std::time::Duration::from_secs_f64(every));
                match scan_spool(fs.as_ref(), &ticker_dir) {
                    Ok(s) => eprintln!("{s}"),
                    Err(e) => eprintln!("spool scan failed: {e}"),
                }
            }
        });
    }
    let image = FibImage::load(&picked.path).map_err(|e| e.to_string())?;
    match image.family() {
        4 => serve_family::<u32>(&image, args),
        6 => serve_family::<u128>(&image, args),
        other => Err(format!("unknown address family {other}")),
    }
}

/// Offline spool report: the one-line verdict, then per-image lint and
/// quarantine detail. Exits non-zero when nothing in the spool could
/// serve a warm restart.
fn spool_status(args: &[String]) -> Result<(), String> {
    let dir = args.first().ok_or("usage: fibc spool-status DIR")?;
    let fs = StdFs::shared();
    let status = scan_spool(fs.as_ref(), Path::new(dir)).map_err(|e| format!("{dir}: {e}"))?;
    println!("{status}");
    for img in &status.images {
        let verdict = if img.issues.is_empty() {
            "clean"
        } else {
            "CORRUPT"
        };
        println!(
            "  epoch {:>20}  {:>10} B  {:<7}  {}",
            img.epoch,
            img.bytes,
            verdict,
            img.path.display()
        );
        for issue in &img.issues {
            println!("    {issue}");
        }
    }
    for reason in &status.quarantine_reasons {
        println!("  quarantined  {reason}");
    }
    if status.verdict() == "no-valid-image" {
        return Err(format!("{dir}: no valid image in spool"));
    }
    Ok(())
}

fn parse_seed(args: &[String]) -> Result<u64, String> {
    let seed_text = opt(args, "--seed").unwrap_or("31410");
    match seed_text.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => seed_text.parse(),
    }
    .map_err(|e| format!("--seed: {e}"))
}

/// Builds one worker's address stream under the requested key model;
/// Zipf and bursty models draw destinations from `fib` (the image's
/// routes section, decoded once by the caller and shared by reference).
fn worker_stream<A: Address>(
    model: KeyModel,
    fib: Option<&BinaryTrie<A>>,
    seed: u64,
    worker: u64,
) -> AddrStream<A> {
    match fib {
        Some(fib) => AddrStream::new(model, fib, seed, worker),
        None => AddrStream::uniform(seed, worker),
    }
}

/// How long a benchmark worker runs: a fixed probe count or a wall-clock
/// duration.
#[derive(Clone, Copy)]
enum ServeBudget {
    Probes(usize),
    Wall(std::time::Duration),
}

/// One worker's serve loop over a zero-copy image view: batches from its
/// private stream through the software-pipelined `lookup_stream` path,
/// with per-batch latency recorded in a log₂ histogram.
fn serve_worker<A: Address + AddrText>(
    image: &FibImage,
    stream: &mut AddrStream<A>,
    budget: ServeBudget,
    batch: usize,
) -> Result<(u64, u64, LatencyHistogram, f64), String> {
    let view: AnyView<'_, A> = any_view(image).map_err(|e| e.to_string())?;
    let mut hist = LatencyHistogram::default();
    let mut packets = 0u64;
    let mut matched = 0u64;
    let mut buf: Vec<A> = Vec::with_capacity(batch);
    let mut out = vec![None; batch];
    let start = std::time::Instant::now();
    loop {
        let n = match budget {
            ServeBudget::Probes(total) => {
                let left = total.saturating_sub(packets as usize);
                if left == 0 {
                    break;
                }
                left.min(batch)
            }
            ServeBudget::Wall(limit) => {
                if start.elapsed() >= limit {
                    break;
                }
                batch
            }
        };
        stream.fill(&mut buf, n);
        let t0 = std::time::Instant::now();
        view.lookup_stream(&buf, &mut out[..n]);
        let dt = t0.elapsed().as_nanos() as f64;
        packets += n as u64;
        matched += out[..n].iter().filter(|o| o.is_some()).count() as u64;
        hist.record(dt / n as f64, n as u64);
    }
    Ok((packets, matched, hist, start.elapsed().as_secs_f64()))
}

/// Runs `threads` workers against the image and prints per-worker stats
/// plus the aggregate.
fn serve_bench<A: Address + AddrText + Sync>(
    image: &FibImage,
    args: &[String],
    budget: ServeBudget,
) -> Result<(), String> {
    let threads: usize = opt(args, "--threads")
        .unwrap_or("1")
        .parse()
        .map_err(|e| format!("--threads: {e}"))?;
    let threads = threads.max(1);
    let batch: usize = opt(args, "--batch")
        .unwrap_or("256")
        .parse()
        .map_err(|e| format!("--batch: {e}"))?;
    let keys = opt(args, "--keys").unwrap_or("uniform");
    let seed = parse_seed(args)?;
    let Some(model) = KeyModel::parse(keys) else {
        return Err(format!("--keys: unknown model '{keys}'"));
    };
    // Decode the routes section once; every worker shares it by
    // reference (Zipf/bursty streams build their own popularity model,
    // but the trie decode is the expensive part).
    let fib: Option<BinaryTrie<A>> = if model == KeyModel::Uniform {
        None
    } else {
        Some(image.routes().map_err(|e| {
            format!("--keys {keys} needs the image's routes section ({e}); use --keys uniform")
        })?)
    };
    let fib = fib.as_ref();
    let engine = any_view::<A>(image)
        .map(|v| FibLookup::<A>::name(&v))
        .map_err(|e| e.to_string())?;

    // --probe is fixed total work: split it across the pool (the first
    // workers absorb the remainder) so `--probe N --threads T` always
    // performs N lookups, enabling like-for-like thread comparisons.
    let worker_budget = |worker: usize| match budget {
        ServeBudget::Probes(total) => {
            let share = total / threads + usize::from(worker < total % threads);
            ServeBudget::Probes(share)
        }
        wall => wall,
    };
    let results: Vec<Result<(u64, u64, LatencyHistogram, f64), String>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let budget = worker_budget(worker);
                    scope.spawn(move || {
                        let mut stream = worker_stream::<A>(model, fib, seed, worker as u64);
                        serve_worker(image, &mut stream, budget, batch)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve worker panicked"))
                .collect()
        });

    let mut total_hist = LatencyHistogram::default();
    let mut total_packets = 0u64;
    let mut total_matched = 0u64;
    let mut total_mlps = 0.0;
    for (worker, result) in results.into_iter().enumerate() {
        let (packets, matched, hist, secs) = result?;
        let mlps = if secs > 0.0 {
            packets as f64 / secs / 1e6
        } else {
            0.0
        };
        println!(
            "worker {worker}: {packets} pkts ({matched} matched), \
             {mlps:.2} Mlps, p50 {:.1} ns, p99 {:.1} ns",
            hist.p50(),
            hist.p99()
        );
        total_hist.merge(&hist);
        total_packets += packets;
        total_matched += matched;
        total_mlps += mlps;
    }
    println!(
        "total via {engine} ({keys}, {threads} thr, batch {batch}): \
         {total_packets} pkts ({total_matched} matched), {total_mlps:.2} Mlps, \
         p50 {:.1} ns, p99 {:.1} ns",
        total_hist.p50(),
        total_hist.p99()
    );
    Ok(())
}

/// `fibc serve` on a vrfset image: `--probe N` runs a deterministic
/// mixed-VRF stream (uniform or Zipf-skewed across tables); stdin mode
/// takes `VRF ADDR` lines and answers in input order.
fn serve_vrf_family<A: Address + AddrText>(
    image: &FibImage,
    args: &[String],
) -> Result<(), String> {
    let view = VrfSetRef::<A>::from_image(image).map_err(|e| e.to_string())?;
    if view.is_empty() {
        return Err("vrf set holds no tables".into());
    }
    // Directory order → VRF id: the probe stream draws table *slots* so
    // skew lands on real ids even when they are sparse.
    let ids: Vec<u32> = view.tables().iter().map(|t| t.id).collect();
    if let Some(count) = opt(args, "--probe") {
        let count: usize = count.parse().map_err(|e| format!("--probe: {e}"))?;
        let seed = parse_seed(args)?;
        let keys = opt(args, "--keys").unwrap_or("uniform");
        let weights = match keys {
            "uniform" => None,
            // Zipf/bursty skew lands on table popularity here; addresses
            // stay uniform (per-table key locality is benchdump's job).
            "zipf" | "bursty" => Some(fleet_weights(view.len(), 1.0)),
            other => return Err(format!("--keys: unknown model '{other}'")),
        };
        let probes: Vec<(u32, A)> = mixed_keys(view.len(), weights.as_deref(), seed, count);
        let start = std::time::Instant::now();
        let mut matched = 0u64;
        for &(slot, addr) in &probes {
            if view.lookup(ids[slot as usize], addr).is_some() {
                matched += 1;
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let mlps = if secs > 0.0 {
            count as f64 / secs / 1e6
        } else {
            0.0
        };
        println!(
            "vrf probe ({keys}): {count} pkts over {} VRFs ({matched} matched), {mlps:.2} Mlps",
            view.len()
        );
        return Ok(());
    }
    let stdin = std::io::stdin();
    let mut reader = std::io::BufReader::new(stdin.lock());
    let mut line = String::new();
    loop {
        line.clear();
        let n = std::io::BufRead::read_line(&mut reader, &mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            break;
        }
        let text = line.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut parts = text.split_whitespace();
        let (Some(vrf), Some(addr)) = (parts.next(), parts.next()) else {
            eprintln!("{text}: want 'VRF ADDR'");
            continue;
        };
        let vrf: u32 = match vrf.parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{text}: bad VRF id: {e}");
                continue;
            }
        };
        match A::parse_addr(addr) {
            Ok(addr) => match view.lookup(vrf, addr) {
                Some(nh) => println!("{text} -> {nh}"),
                None => println!("{text} -> no route"),
            },
            Err(e) => eprintln!("{text}: {e}"),
        }
    }
    Ok(())
}

fn serve_family<A: Address + AddrText + Sync>(
    image: &FibImage,
    args: &[String],
) -> Result<(), String> {
    if image.engine() == Ok(EngineKind::VrfSet) {
        return serve_vrf_family::<A>(image, args);
    }
    if let Some(count) = opt(args, "--probe") {
        let count: usize = count.parse().map_err(|e| format!("--probe: {e}"))?;
        return serve_bench::<A>(image, args, ServeBudget::Probes(count));
    }
    if let Some(secs) = opt(args, "--duration") {
        let secs: f64 = secs.parse().map_err(|e| format!("--duration: {e}"))?;
        return serve_bench::<A>(
            image,
            args,
            ServeBudget::Wall(std::time::Duration::from_secs_f64(secs)),
        );
    }
    // Interactive/pipe mode: one address per line on stdin, resolved in
    // batches through the interleaved lookup_batch path, answers in
    // input order. Batching must never delay an answer a slow producer
    // is waiting for (a terminal, a lockstep coprocess, `tail -f`), so
    // the queue is flushed whenever the read buffer drains — a full pipe
    // keeps batching, a line-at-a-time producer gets a line-at-a-time
    // echo.
    let view: AnyView<'_, A> = any_view(image).map_err(|e| e.to_string())?;
    const STDIN_BATCH: usize = 1024;
    let mut texts: Vec<String> = Vec::with_capacity(STDIN_BATCH);
    let mut addrs: Vec<A> = Vec::with_capacity(STDIN_BATCH);
    let mut out = vec![None; STDIN_BATCH];
    let mut flush = |texts: &mut Vec<String>, addrs: &mut Vec<A>| {
        view.lookup_batch(addrs, &mut out[..addrs.len()]);
        for (text, nh) in texts.iter().zip(&out) {
            match nh {
                Some(nh) => println!("{text} -> {nh}"),
                None => println!("{text} -> no route"),
            }
        }
        texts.clear();
        addrs.clear();
    };
    let stdin = std::io::stdin();
    let mut reader = std::io::BufReader::new(stdin.lock());
    let mut line = String::new();
    loop {
        line.clear();
        let n = std::io::BufRead::read_line(&mut reader, &mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            break;
        }
        let text = line.trim();
        let drained = reader.buffer().is_empty();
        if text.is_empty() {
            if drained {
                flush(&mut texts, &mut addrs);
            }
            continue;
        }
        match A::parse_addr(text) {
            Ok(addr) => {
                texts.push(text.to_string());
                addrs.push(addr);
                if drained || addrs.len() == STDIN_BATCH {
                    flush(&mut texts, &mut addrs);
                }
            }
            Err(e) => {
                // Keep output order: answer everything queued, then the
                // error.
                flush(&mut texts, &mut addrs);
                eprintln!("{text}: {e}");
            }
        }
    }
    flush(&mut texts, &mut addrs);
    Ok(())
}

/// Textual address parsing per family (dotted quad / RFC 5952).
trait AddrText: Sized {
    fn parse_addr(text: &str) -> Result<Self, String>;
}

impl AddrText for u32 {
    fn parse_addr(text: &str) -> Result<Self, String> {
        text.parse::<std::net::Ipv4Addr>()
            .map(u32::from)
            .map_err(|e| e.to_string())
    }
}

impl AddrText for u128 {
    fn parse_addr(text: &str) -> Result<Self, String> {
        text.parse::<std::net::Ipv6Addr>()
            .map(u128::from)
            .map_err(|e| e.to_string())
    }
}
