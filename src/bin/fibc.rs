//! `fibc` — the FIB image compiler/inspector/server.
//!
//! Drives the whole `fibimage/v1` pipeline from the shell:
//!
//! ```sh
//! # Compile a routes file into an image (engine: xbw|pdag|serialized|multibit|lctrie).
//! fibc compile --engine serialized --routes routes.txt --out fib.img
//!
//! # Or compile a synthetic paper instance (taz, hbone, …) at a scale.
//! fibc compile --engine xbw --instance taz --scale 0.1 --out taz.img
//!
//! # What is in an image?
//! fibc inspect fib.img
//!
//! # Serve lookups from the image (zero-copy view; no rebuild).
//! echo 8.8.8.8 | fibc serve fib.img
//! fibc serve fib.img --probe 100000        # deterministic benchmark probes
//! ```
//!
//! Routes files are plain text: one `prefix next_hop_index` pair per line
//! (`10.0.0.0/8 3`, `2001:db8::/32 1`), `#` comments allowed. The address
//! family is inferred from the first route (or forced with `--v6`).

use std::io::BufRead;
use std::process::ExitCode;

use fibcomp::core::image::sections;
use fibcomp::core::{
    any_view, write_image, AnyView, BuildConfig, EngineKind, FibBuild, FibImage, FibLookup,
    ImageCodec, ImageError, MultibitDag, PrefixDag, SerializedDag, XbwFib, XbwStorage,
};
use fibcomp::trie::{Address, BinaryTrie, LcTrie, NextHop, Prefix};
use fibcomp::workload::rng::Xoshiro256;
use fibcomp::workload::traces;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => compile(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fibc: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  fibc compile --engine <xbw|pdag|serialized|multibit|lctrie> \\
               (--routes FILE | --instance NAME [--scale S] [--seed N]) \\
               --out IMG [--v6] [--xbw-mode succinct|entropy] [--lambda N] \\
               [--stride N] [--epoch N] [--no-routes]
  fibc inspect IMG
  fibc serve IMG [--probe N [--seed N]]   (without --probe: addresses on stdin)";

/// `--key value` argument lookup.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn parse_routes<A: Address>(path: &str) -> Result<BinaryTrie<A>, String>
where
    Prefix<A>: std::str::FromStr,
    <Prefix<A> as std::str::FromStr>::Err: std::fmt::Display,
{
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut trie = BinaryTrie::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(prefix), Some(nh)) = (parts.next(), parts.next()) else {
            return Err(format!("{path}:{}: want 'prefix next_hop'", lineno + 1));
        };
        let prefix: Prefix<A> = prefix
            .parse()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let nh: u32 = nh
            .parse()
            .map_err(|e| format!("{path}:{}: bad next-hop: {e}", lineno + 1))?;
        trie.insert(prefix, NextHop::new(nh));
    }
    Ok(trie)
}

fn build_config(args: &[String]) -> Result<BuildConfig, String> {
    let mut config = BuildConfig::default();
    if let Some(lambda) = opt(args, "--lambda") {
        config.lambda = Some(lambda.parse().map_err(|e| format!("--lambda: {e}"))?);
    }
    if let Some(stride) = opt(args, "--stride") {
        config.stride = stride.parse().map_err(|e| format!("--stride: {e}"))?;
    }
    config.xbw_storage = match opt(args, "--xbw-mode").unwrap_or("entropy") {
        "succinct" => XbwStorage::Succinct,
        "entropy" => XbwStorage::Entropy,
        other => return Err(format!("--xbw-mode: unknown mode '{other}'")),
    };
    Ok(config)
}

fn compile(args: &[String]) -> Result<(), String> {
    let engine = EngineKind::parse(opt(args, "--engine").ok_or("--engine is required")?)
        .ok_or("unknown engine (want xbw|pdag|serialized|multibit|lctrie)")?;
    let out = opt(args, "--out").ok_or("--out is required")?;
    let epoch: u64 = opt(args, "--epoch")
        .unwrap_or("0")
        .parse()
        .map_err(|e| format!("--epoch: {e}"))?;
    let config = build_config(args)?;
    let with_routes = !flag(args, "--no-routes");

    if flag(args, "--v6") {
        let routes = opt(args, "--routes").ok_or("--routes is required with --v6")?;
        let trie = parse_routes::<u128>(routes)?;
        compile_trie(&trie, engine, &config, epoch, with_routes, out)
    } else if let Some(routes) = opt(args, "--routes") {
        let trie = parse_routes::<u32>(routes)?;
        compile_trie(&trie, engine, &config, epoch, with_routes, out)
    } else if let Some(name) = opt(args, "--instance") {
        let scale: f64 = opt(args, "--scale")
            .unwrap_or("1.0")
            .parse()
            .map_err(|e| format!("--scale: {e}"))?;
        let seed: u64 = opt(args, "--seed")
            .unwrap_or("3851")
            .parse()
            .map_err(|e| format!("--seed: {e}"))?;
        let mut inst = fibcomp::workload::instances::by_name(name)
            .ok_or_else(|| format!("unknown paper instance '{name}'"))?;
        inst.n_prefixes = ((inst.n_prefixes as f64 * scale) as usize).max(64);
        let trie = inst.build(seed);
        compile_trie(&trie, engine, &config, epoch, with_routes, out)
    } else {
        Err("need --routes FILE or --instance NAME".into())
    }
}

fn compile_trie<A: Address>(
    trie: &BinaryTrie<A>,
    engine: EngineKind,
    config: &BuildConfig,
    epoch: u64,
    with_routes: bool,
    out: &str,
) -> Result<(), String> {
    let routes = with_routes.then_some(trie);
    let bytes = match engine {
        EngineKind::Xbw => encode::<A, XbwFib<A>>(trie, config, routes, epoch),
        EngineKind::PrefixDag => encode::<A, PrefixDag<A>>(trie, config, routes, epoch),
        EngineKind::SerializedDag => encode::<A, SerializedDag<A>>(trie, config, routes, epoch),
        EngineKind::MultibitDag => encode::<A, MultibitDag<A>>(trie, config, routes, epoch),
        EngineKind::LcTrie => encode::<A, LcTrie<A>>(trie, config, routes, epoch),
    }
    .map_err(|e| e.to_string())?;
    std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "compiled {} routes -> {} ({} engine, {} bytes)",
        trie.len(),
        out,
        engine.name(),
        bytes.len()
    );
    Ok(())
}

fn encode<A: Address, E: ImageCodec<A> + FibBuild<A>>(
    trie: &BinaryTrie<A>,
    config: &BuildConfig,
    routes: Option<&BinaryTrie<A>>,
    epoch: u64,
) -> Result<Vec<u8>, ImageError> {
    let engine = E::build(trie, config);
    write_image(&engine, routes, epoch)
}

fn section_name(id: u32) -> &'static str {
    match id {
        sections::PARAMS => "params",
        sections::ROUTES => "routes",
        sections::XBW_SI => "xbw.s_i",
        sections::XBW_SA => "xbw.s_alpha",
        sections::XBW_LABELS => "xbw.labels",
        sections::PDAG_NODES => "pdag.nodes",
        sections::SER_ENTRIES => "serialized.entries",
        sections::SER_NODES => "serialized.nodes",
        sections::MB_SLOTS => "multibit.slots",
        sections::LC_NODES => "lctrie.nodes",
        _ => "unknown",
    }
}

fn inspect(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: fibc inspect IMG")?;
    let image = FibImage::load(path).map_err(|e| e.to_string())?;
    let engine = image.engine().map(EngineKind::name).unwrap_or("<unknown>");
    println!("fibimage v{}", image.version());
    println!("  engine        {engine} (id {})", image.engine_id());
    println!("  family        IPv{}", image.family());
    println!("  routes        {}", image.route_count());
    if image.prefix_count() > 0 {
        println!("  leaves        {}", image.prefix_count());
    }
    println!("  epoch         {}", image.epoch());
    println!("  file size     {} bytes", image.words().len() * 8);
    println!("  sections      {}", image.section_table().len());
    let mut engine_payload = 0usize;
    for entry in image.section_table() {
        let bytes = entry.len * 8;
        if entry.id != sections::ROUTES && entry.id != sections::PARAMS {
            engine_payload += bytes;
        }
        println!(
            "    {:<20} id {:#04x}  offset {:>10} B  size {:>10} B",
            section_name(entry.id),
            entry.id,
            entry.offset * 8,
            bytes
        );
    }
    let claimed = image.claimed_size_bytes();
    println!("  engine payload  {engine_payload} bytes");
    println!("  claimed size    {claimed} bytes (engine's own size_bytes at compile time)");
    if claimed > 0 {
        let drift = (engine_payload as f64 - claimed as f64) / claimed as f64 * 100.0;
        println!("  accounting drift {drift:+.2}%");
    }
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: fibc serve IMG [--probe N]")?;
    let image = FibImage::load(path).map_err(|e| e.to_string())?;
    match image.family() {
        4 => serve_family::<u32>(&image, args),
        6 => serve_family::<u128>(&image, args),
        other => Err(format!("unknown address family {other}")),
    }
}

fn serve_family<A: Address + AddrText>(image: &FibImage, args: &[String]) -> Result<(), String> {
    let view: AnyView<'_, A> = any_view(image).map_err(|e| e.to_string())?;
    if let Some(count) = opt(args, "--probe") {
        let count: usize = count.parse().map_err(|e| format!("--probe: {e}"))?;
        let seed_text = opt(args, "--seed").unwrap_or("31410");
        let seed: u64 = match seed_text.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => seed_text.parse(),
        }
        .map_err(|e| format!("--seed: {e}"))?;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let addrs: Vec<A> = traces::uniform(&mut rng, count);
        let mut out = vec![None; addrs.len()];
        let start = std::time::Instant::now();
        view.lookup_batch(&addrs, &mut out);
        let elapsed = start.elapsed();
        let matched = out.iter().filter(|o| o.is_some()).count();
        println!(
            "{} probes via {}: {} matched, {:.1} ns/lookup",
            count,
            FibLookup::<A>::name(&view),
            matched,
            elapsed.as_nanos() as f64 / count.max(1) as f64
        );
        return Ok(());
    }
    // Interactive/pipe mode: one address per line on stdin.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        match A::parse_addr(text) {
            Ok(addr) => match view.lookup(addr) {
                Some(nh) => println!("{text} -> {nh}"),
                None => println!("{text} -> no route"),
            },
            Err(e) => eprintln!("{text}: {e}"),
        }
    }
    Ok(())
}

/// Textual address parsing per family (dotted quad / RFC 5952).
trait AddrText: Sized {
    fn parse_addr(text: &str) -> Result<Self, String>;
}

impl AddrText for u32 {
    fn parse_addr(text: &str) -> Result<Self, String> {
        text.parse::<std::net::Ipv4Addr>()
            .map(u32::from)
            .map_err(|e| e.to_string())
    }
}

impl AddrText for u128 {
    fn parse_addr(text: &str) -> Result<Self, String> {
        text.parse::<std::net::Ipv6Addr>()
            .map(u128::from)
            .map_err(|e| e.to_string())
    }
}
