//! # fibcomp — entropy-bounded IP forwarding table compression
//!
//! Umbrella crate for the reproduction of Rétvári et al., *Compressing IP
//! Forwarding Tables: Towards Entropy Bounds and Beyond* (SIGCOMM 2013).
//!
//! The workspace is organized bottom-up; this crate re-exports every layer
//! so that applications can depend on a single crate:
//!
//! * [`succinct`] — rank/select bit vectors, RRR, wavelet trees, Huffman
//!   codes (the compressed-string-index substrate of Section 3),
//! * [`trie`] — addresses, prefixes and the classic FIB representations of
//!   Section 2 (tabular, binary trie, leaf-pushing, ORTC, LC-trie),
//! * [`core`] — the paper's contribution: FIB entropy bounds, the XBW-b
//!   transform, and trie-folding prefix DAGs with λ-barrier updates,
//!   behind the engine trait family ([`core::FibLookup`] for single and
//!   batched lookup, [`core::FibBuild`] for uniform construction,
//!   [`core::FibUpdate`] for incremental updates with a rebuild escape
//!   hatch), plus [`core::image`]: the versioned `fibimage/v1` on-disk
//!   format with zero-copy load ([`core::ImageCodec`] writes every
//!   Table 2 engine and borrows it back as a `*Ref` view; the `fibc`
//!   binary drives the pipeline from the shell),
//! * [`router`] — the control/data-plane router core of §5:
//!   [`router::Router`] pairs an oracle control FIB and update journal
//!   with epoch snapshots published through the wait-free
//!   [`router::SnapCell`] (lock-free packet-path reads), applies
//!   in-place pDAG updates until arena fragmentation triggers a
//!   (background) compacting rebuild, spills every published epoch as a
//!   `fibimage/v1` file when a spool is armed and warm-restarts from the
//!   newest valid image plus journal replay;
//!   [`router::Forwarder`] runs the multi-core forwarding runtime
//!   (per-worker snapshot caches, an MPSC [`router::UpdateBus`] into the
//!   control plane, per-worker latency histograms), and
//!   [`router::ShardedRouter`] splits the address space across 256
//!   first-byte shards,
//! * [`workload`] — synthetic FIB generators, BGP-like update sequences and
//!   lookup traces standing in for the paper's proprietary datasets,
//! * [`hwsim`] — SRAM/FPGA cycle model and cache-hierarchy simulator used
//!   by the Table 2 reproduction.
//!
//! ## Quickstart
//!
//! ```
//! use fibcomp::prelude::*;
//!
//! // A toy FIB: the example of Fig. 1 in the paper.
//! let routes = [
//!     (Prefix4::from_str("0.0.0.0/0").unwrap(), NextHop::new(2)),
//!     (Prefix4::from_str("0.0.0.0/1").unwrap(), NextHop::new(3)),
//!     (Prefix4::from_str("0.0.0.0/2").unwrap(), NextHop::new(3)),
//!     (Prefix4::from_str("32.0.0.0/3").unwrap(), NextHop::new(2)),
//!     (Prefix4::from_str("64.0.0.0/2").unwrap(), NextHop::new(2)),
//!     (Prefix4::from_str("96.0.0.0/3").unwrap(), NextHop::new(1)),
//! ];
//! let trie: BinaryTrie<u32> = routes.iter().copied().collect();
//!
//! // Compress with trie-folding (λ = 2) and with XBW-b.
//! let dag = PrefixDag::from_trie(&trie, 2);
//! let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
//!
//! // All representations agree on every longest-prefix-match.
//! let addr = u32::from(std::net::Ipv4Addr::new(96, 1, 2, 3));
//! assert_eq!(trie.lookup(addr), dag.lookup(addr));
//! assert_eq!(trie.lookup(addr), xbw.lookup(addr));
//! assert_eq!(dag.lookup(addr), Some(NextHop::new(1)));
//!
//! // The data plane consumes the flat serialized image and answers whole
//! // packet batches at once (interleaved multi-lane walk).
//! let ser = SerializedDag::from_dag(&dag);
//! let batch = [addr, 0x0000_0001, 0x8123_4567];
//! let mut next_hops = [None; 3];
//! ser.lookup_batch(&batch, &mut next_hops);
//! for (a, nh) in batch.iter().zip(&next_hops) {
//!     assert_eq!(*nh, trie.lookup(*a));
//! }
//!
//! // A router wraps the whole lifecycle: control-plane updates, epoch
//! // snapshots, rebuild-on-degradation.
//! let mut router: Router<u32, PrefixDag<u32>> =
//!     Router::new(trie.clone(), RouterConfig::default());
//! router.announce(Prefix4::from_str("96.0.0.0/11").unwrap(), NextHop::new(4));
//! let snapshot = router.publish();
//! assert_eq!(snapshot.lookup(addr), Some(NextHop::new(4)));
//! ```

#![deny(unsafe_code)]

pub use fib_core as core;
pub use fib_hwsim as hwsim;
pub use fib_router as router;
pub use fib_succinct as succinct;
pub use fib_trie as trie;
pub use fib_workload as workload;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use fib_core::{
        BuildConfig, FibBuild, FibEngine, FibEntropy, FibLookup, FibUpdate, FoldedString,
        PrefixDag, RebuildNeeded, SerializedDag, XbwFib, XbwStorage,
    };
    pub use fib_router::{Router, RouterConfig, ShardedRouter};
    pub use fib_trie::{
        Address, BinaryTrie, Depth, LcTrie, NextHop, Prefix, Prefix4, Prefix6, ProperTrie,
        RouteTable,
    };
    pub use std::str::FromStr;
}
